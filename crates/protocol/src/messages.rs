//! The typed message vocabulary of the middleware.
//!
//! Every frame payload is one [`Message`]. The vocabulary covers the four
//! communication primitives of the paper (§4) plus the container-to-container
//! control plane (§3): discovery, announcements, heartbeats and service
//! status notifications.

use bytes::{Bytes, BytesMut};

use marea_encoding::{typedesc, DecodeError, WireReader, WireWriter};
use marea_presentation::{DataType, Name};

use crate::frame::Frame;
use crate::ids::{GroupId, NodeId, RequestId, TransferId};

/// Maximum bytes accepted for any embedded blob while decoding messages.
const MAX_EMBEDDED: usize = crate::frame::MAX_FRAME_PAYLOAD;

/// Maximum entries accepted in announcement/nack lists.
const MAX_LIST: usize = 4096;

macro_rules! message_kinds {
    ($($(#[$doc:meta])* $variant:ident = $tag:expr),* $(,)?) => {
        /// Wire tag identifying the message carried by a frame.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        #[repr(u8)]
        pub enum MessageKind {
            $($(#[$doc])* $variant = $tag,)*
        }

        impl MessageKind {
            /// Stable wire tag.
            pub fn wire_tag(self) -> u8 {
                self as u8
            }

            /// Inverse of [`MessageKind::wire_tag`].
            pub fn from_wire_tag(tag: u8) -> Option<MessageKind> {
                match tag {
                    $($tag => Some(MessageKind::$variant),)*
                    _ => None,
                }
            }

            /// Every kind, for exhaustive tests.
            pub const ALL: &'static [MessageKind] = &[$(MessageKind::$variant,)*];
        }
    };
}

message_kinds! {
    /// Container start-up announcement (control group).
    Hello = 0,
    /// Periodic liveness beacon (control group).
    Heartbeat = 1,
    /// Graceful shutdown notice (control group).
    Bye = 2,
    /// Full catalogue of services and provisions hosted by a node.
    Announce = 3,
    /// Single service state-change notification.
    ServiceStatus = 4,
    /// Variable subscription request (unicast to provider).
    SubscribeVar = 5,
    /// Variable unsubscription (unicast to provider).
    UnsubscribeVar = 6,
    /// Best-effort variable sample (multicast).
    VarSample = 7,
    /// Event publication (rides the reliable channel).
    EventData = 8,
    /// Remote invocation request (rides the reliable channel).
    CallRequest = 9,
    /// Remote invocation reply (rides the reliable channel).
    CallReply = 10,
    /// File transfer announcement (multicast).
    FileAnnounce = 11,
    /// File transfer subscription (unicast to publisher).
    FileSubscribe = 12,
    /// One file chunk (multicast).
    FileChunk = 13,
    /// Completion-status query (multicast).
    FileQuery = 14,
    /// Subscriber has every chunk (unicast to publisher).
    FileAck = 15,
    /// Subscriber is missing chunk runs (unicast to publisher).
    FileNack = 16,
    /// Publisher aborts a transfer.
    FileCancel = 17,
    /// Fragment of a larger logical payload.
    Fragment = 18,
    /// Reliable-channel data envelope (ARQ).
    RelData = 19,
    /// Reliable-channel acknowledgement (ARQ).
    RelAck = 20,
    /// Event subscription request (unicast to provider).
    SubscribeEvent = 21,
    /// Event unsubscription (unicast to provider).
    UnsubscribeEvent = 22,
    /// FEC shard: a coded slice of the reliable channel (below ARQ).
    FecShard = 23,
    /// Periodic catalogue summary (control group): replaces the full
    /// `Announce` flood while the catalogue is unchanged.
    AnnounceDigest = 24,
    /// Unicast request for a full catalogue `Announce` (digest mismatch
    /// or unknown-node recovery).
    AnnounceRequest = 25,
}

/// Lifecycle state of a service instance as broadcast to other containers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServiceState {
    /// Registered, `on_start` not yet run.
    Starting,
    /// Healthy and schedulable.
    Running,
    /// Alive but operating in degraded mode.
    Degraded,
    /// Cleanly stopped.
    Stopped,
    /// Crashed or declared dead by the container watchdog.
    Failed,
}

impl ServiceState {
    /// Stable wire tag.
    pub fn wire_tag(self) -> u8 {
        match self {
            ServiceState::Starting => 0,
            ServiceState::Running => 1,
            ServiceState::Degraded => 2,
            ServiceState::Stopped => 3,
            ServiceState::Failed => 4,
        }
    }

    /// Inverse of [`ServiceState::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<ServiceState> {
        Some(match tag {
            0 => ServiceState::Starting,
            1 => ServiceState::Running,
            2 => ServiceState::Degraded,
            3 => ServiceState::Stopped,
            4 => ServiceState::Failed,
            _ => return None,
        })
    }

    /// `true` when the instance can serve subscriptions/calls.
    pub fn is_available(self) -> bool {
        matches!(self, ServiceState::Running | ServiceState::Degraded)
    }
}

/// Signature of a remotely invocable function.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSig {
    /// Parameter types, in call order.
    pub params: Vec<DataType>,
    /// Return type; `None` for one-way procedures.
    pub returns: Option<DataType>,
}

/// One capability a service announces to the network.
#[derive(Debug, Clone, PartialEq)]
pub enum Provision {
    /// A published variable (paper §4.1).
    Variable {
        /// Variable name (globally addressable).
        name: Name,
        /// Sample schema.
        ty: DataType,
        /// Nominal publication period in µs (0 = on change only).
        period_us: u64,
        /// Validity window in µs: how long a sample may be served after it
        /// was produced (paper: "the provider service can specify the
        /// variable validity as a quality of service parameter").
        validity_us: u64,
    },
    /// A published event channel (paper §4.2).
    Event {
        /// Event name.
        name: Name,
        /// Payload schema; `None` for bare events that "have meaning by
        /// themselves".
        ty: Option<DataType>,
    },
    /// A remotely callable function (paper §4.3).
    Function {
        /// Function name.
        name: Name,
        /// Call signature.
        sig: FunctionSig,
    },
    /// A file resource that can be distributed (paper §4.4).
    FileResource {
        /// Resource name.
        name: Name,
    },
}

impl Provision {
    /// The provision's addressable name.
    pub fn name(&self) -> &Name {
        match self {
            Provision::Variable { name, .. }
            | Provision::Event { name, .. }
            | Provision::Function { name, .. }
            | Provision::FileResource { name } => name,
        }
    }

    fn wire_tag(&self) -> u8 {
        match self {
            Provision::Variable { .. } => 0,
            Provision::Event { .. } => 1,
            Provision::Function { .. } => 2,
            Provision::FileResource { .. } => 3,
        }
    }
}

/// One service entry inside an [`Message::Announce`].
#[derive(Debug, Clone, PartialEq)]
pub struct AnnounceEntry {
    /// Per-node instance sequence number (combined with the frame's source
    /// node this forms the [`ServiceId`](crate::ServiceId)).
    pub service_seq: u32,
    /// Service name.
    pub name: Name,
    /// Current lifecycle state.
    pub state: ServiceState,
    /// Everything the service offers.
    pub provides: Vec<Provision>,
}

/// Outcome tag of a remote invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CallStatus {
    /// Function ran; payload is the encoded return value.
    Ok,
    /// Function ran and returned an application-level error string.
    AppError,
    /// No such function at the target.
    NoSuchFunction,
    /// Target service is not available.
    ServiceUnavailable,
    /// The middleware timed out waiting for the reply.
    Timeout,
}

impl CallStatus {
    /// Stable wire tag.
    pub fn wire_tag(self) -> u8 {
        match self {
            CallStatus::Ok => 0,
            CallStatus::AppError => 1,
            CallStatus::NoSuchFunction => 2,
            CallStatus::ServiceUnavailable => 3,
            CallStatus::Timeout => 4,
        }
    }

    /// Inverse of [`CallStatus::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<CallStatus> {
        Some(match tag {
            0 => CallStatus::Ok,
            1 => CallStatus::AppError,
            2 => CallStatus::NoSuchFunction,
            3 => CallStatus::ServiceUnavailable,
            4 => CallStatus::Timeout,
            _ => return None,
        })
    }
}

/// A typed middleware message.
///
/// Serialization is hand-rolled over [`WireWriter`]/[`WireReader`]: message
/// payloads are middleware-internal and never go through the
/// presentation-layer codecs (which are reserved for *application* data).
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Container start-up announcement.
    Hello {
        /// Human-readable container name.
        container: Name,
        /// Monotonic restart counter, used to detect node reboots.
        incarnation: u64,
        /// Strongest FEC code rate this node can run on its reliable
        /// links ([`FecRate`](crate::fec::FecRate) wire tag; 0 = none).
        /// Each link runs the weaker of the two ends' capabilities.
        fec_cap: u8,
    },
    /// Periodic liveness beacon.
    Heartbeat {
        /// Restart counter matching the last `Hello`.
        incarnation: u64,
        /// Microseconds since container start.
        uptime_us: u64,
        /// Scheduler load in permille (0-1000), used for dynamic remote
        /// invocation load balancing (paper §4.3).
        load_permille: u16,
        /// FEC capability refresh (same encoding as `Hello::fec_cap`): a
        /// node that missed the peer's `Hello` — attached late, lossy
        /// bring-up — still converges on the advertised cap within one
        /// heartbeat period instead of running uncoded forever.
        fec_cap: u8,
    },
    /// Graceful shutdown notice.
    Bye,
    /// Full service catalogue of the sending node.
    Announce {
        /// Restart counter.
        incarnation: u64,
        /// Hosted services and their provisions.
        entries: Vec<AnnounceEntry>,
    },
    /// Single service state change.
    ServiceStatus {
        /// Instance sequence on the sending node.
        service_seq: u32,
        /// Service name.
        name: Name,
        /// New state.
        state: ServiceState,
    },
    /// Variable subscription request.
    SubscribeVar {
        /// Variable name.
        name: Name,
        /// Subscribing node (for initial-value unicast).
        subscriber: NodeId,
        /// Request the current value immediately (paper §4.1: "a mechanism
        /// that guarantees an initial exact value").
        need_initial: bool,
    },
    /// Variable unsubscription.
    UnsubscribeVar {
        /// Variable name.
        name: Name,
        /// Unsubscribing node.
        subscriber: NodeId,
    },
    /// Best-effort variable sample.
    VarSample {
        /// Variable name.
        name: Name,
        /// Per-variable monotonically increasing sample number.
        seq: u64,
        /// Production timestamp (µs since publisher epoch).
        stamp_us: u64,
        /// Validity window of this sample in µs.
        validity_us: u64,
        /// Mint counter of the causal trace id stamped by the
        /// publisher's flight recorder (0 = untraced). Only the counter
        /// travels — the origin node is the frame's `src`, so traced
        /// frames stay 1-3 varint bytes heavier instead of 5-6.
        trace: u64,
        /// Codec id of the payload.
        codec: u8,
        /// Encoded sample.
        payload: Bytes,
    },
    /// Event publication.
    EventData {
        /// Event name.
        name: Name,
        /// Per-event-channel sequence number.
        seq: u64,
        /// Production timestamp (µs since publisher epoch).
        stamp_us: u64,
        /// Mint counter of the emitter's causal trace id (0 =
        /// untraced); the origin node is the frame's `src`.
        trace: u64,
        /// Codec id of the payload (ignored when `payload` is empty).
        codec: u8,
        /// Encoded associated data; empty for bare events.
        payload: Bytes,
    },
    /// Remote invocation request.
    CallRequest {
        /// Correlation id, unique per calling node.
        request: RequestId,
        /// Function name.
        function: Name,
        /// Target service instance sequence on the destination node.
        target_seq: u32,
        /// Mint counter of the caller's causal trace id (0 =
        /// untraced); the origin node is the frame's `src`.
        trace: u64,
        /// Codec id of the argument payload.
        codec: u8,
        /// Encoded argument list.
        payload: Bytes,
    },
    /// Remote invocation reply.
    CallReply {
        /// Correlation id from the request.
        request: RequestId,
        /// Outcome.
        status: CallStatus,
        /// Mint counter echoed from the request, so the caller's chain
        /// closes without a correlation lookup (0 = untraced); the
        /// origin is the caller itself, which minted the id.
        trace: u64,
        /// Codec id of the result payload.
        codec: u8,
        /// Encoded return value, or UTF-8 error text for `AppError`.
        payload: Bytes,
    },
    /// File transfer announcement (start of the *announce* phase, §4.4).
    FileAnnounce {
        /// Transfer session id.
        transfer: TransferId,
        /// Resource name.
        resource: Name,
        /// Resource revision ("revision numbers identify different versions
        /// of the same resource").
        revision: u32,
        /// Total size in bytes.
        size: u64,
        /// Chunk size in bytes (all chunks equal except the last).
        chunk_size: u32,
        /// Multicast group the chunks will travel on.
        group: GroupId,
    },
    /// Subscription to an announced transfer.
    FileSubscribe {
        /// Transfer session id.
        transfer: TransferId,
        /// Subscribing node.
        subscriber: NodeId,
    },
    /// One chunk of file content.
    FileChunk {
        /// Transfer session id.
        transfer: TransferId,
        /// Revision the chunk belongs to.
        revision: u32,
        /// Chunk index (0-based).
        index: u32,
        /// Chunk bytes.
        payload: Bytes,
    },
    /// Completion-status query (start of the *completion* phase).
    FileQuery {
        /// Transfer session id.
        transfer: TransferId,
        /// Revision being queried.
        revision: u32,
    },
    /// Subscriber holds every chunk of the revision.
    FileAck {
        /// Transfer session id.
        transfer: TransferId,
        /// Completed revision.
        revision: u32,
        /// Acknowledging node.
        subscriber: NodeId,
    },
    /// Subscriber misses the listed chunk runs ("a NACK with a compressed
    /// list of the chunks it lacks").
    FileNack {
        /// Transfer session id.
        transfer: TransferId,
        /// Revision being completed.
        revision: u32,
        /// Nacking node.
        subscriber: NodeId,
        /// Missing chunk runs as `(first_index, run_length)` pairs.
        runs: Vec<(u32, u32)>,
    },
    /// Publisher aborts the transfer.
    FileCancel {
        /// Transfer session id.
        transfer: TransferId,
    },
    /// Fragment of a larger logical payload (see [`crate::fragment`]).
    Fragment {
        /// Id of the fragmented logical message (unique per source node).
        msg_id: u64,
        /// Fragment index (0-based).
        index: u32,
        /// Total number of fragments.
        count: u32,
        /// Fragment bytes.
        payload: Bytes,
    },
    /// Reliable-channel data envelope; `payload` is a complete serialized
    /// inner message (kind byte + body).
    RelData {
        /// Channel id (one per destination link).
        channel: u16,
        /// Channel sequence number.
        seq: u64,
        /// Serialized inner message.
        payload: Bytes,
    },
    /// Reliable-channel acknowledgement.
    RelAck {
        /// Channel id.
        channel: u16,
        /// Receiver's next expected sequence: every `seq < cumulative` has
        /// been delivered.
        cumulative: u64,
        /// Selective-acknowledgement bitmap: bit `i` set means sequence
        /// `cumulative + 1 + i` was received out of order.
        sack: u64,
        /// Receiver's smoothed FEC shard-loss estimate in permille —
        /// the piggybacked feedback that drives the sender's adaptive
        /// code-rate controller (0 when the receiver runs no FEC).
        loss_permille: u16,
    },
    /// Event subscription request.
    SubscribeEvent {
        /// Event name.
        name: Name,
        /// Subscribing node.
        subscriber: NodeId,
    },
    /// Event unsubscription.
    UnsubscribeEvent {
        /// Event name.
        name: Name,
        /// Unsubscribing node.
        subscriber: NodeId,
    },
    /// One shard of an FEC group protecting the reliable channel (sits
    /// *below* ARQ: the payload of a data shard is a complete serialized
    /// `RelData`/`RelAck` message, parity shards carry XOR lane content).
    FecShard {
        /// Reliable-channel id the group belongs to.
        channel: u16,
        /// Group id, strictly increasing per link sender.
        group: u64,
        /// Shard index: `0..k` for data shards;
        /// [`PARITY_INDEX_BIT`](crate::fec::PARITY_INDEX_BIT)` | lane`
        /// for parity shards.
        index: u8,
        /// Data-shard count: the geometry ceiling on data shards, the
        /// group's final count on parity shards (groups may flush short).
        k: u8,
        /// Parity lane count of the group.
        r: u8,
        /// Tagged inner message (data) or XOR lane payload (parity).
        payload: Bytes,
    },
    /// Periodic catalogue summary: the digest-gossip stand-in for a full
    /// [`Message::Announce`]. Receivers that hold a matching digest do
    /// nothing; a mismatch (or an unknown sender) triggers a unicast
    /// [`Message::AnnounceRequest`], so steady-state control traffic is
    /// O(nodes) instead of O(nodes × catalogue).
    AnnounceDigest {
        /// Restart counter matching the last `Hello`/`Announce`.
        incarnation: u64,
        /// Number of catalogue entries the digest summarizes.
        entry_count: u32,
        /// [`announce_hash`] over the full announce body.
        catalogue_hash: u32,
    },
    /// Unicast request that the receiver re-send its full catalogue
    /// (sent on digest mismatch or when a digest arrives from a node we
    /// have no catalogue for).
    AnnounceRequest,
}

impl Message {
    /// The wire kind of this message.
    pub fn kind(&self) -> MessageKind {
        match self {
            Message::Hello { .. } => MessageKind::Hello,
            Message::Heartbeat { .. } => MessageKind::Heartbeat,
            Message::Bye => MessageKind::Bye,
            Message::Announce { .. } => MessageKind::Announce,
            Message::ServiceStatus { .. } => MessageKind::ServiceStatus,
            Message::SubscribeVar { .. } => MessageKind::SubscribeVar,
            Message::UnsubscribeVar { .. } => MessageKind::UnsubscribeVar,
            Message::VarSample { .. } => MessageKind::VarSample,
            Message::EventData { .. } => MessageKind::EventData,
            Message::CallRequest { .. } => MessageKind::CallRequest,
            Message::CallReply { .. } => MessageKind::CallReply,
            Message::FileAnnounce { .. } => MessageKind::FileAnnounce,
            Message::FileSubscribe { .. } => MessageKind::FileSubscribe,
            Message::FileChunk { .. } => MessageKind::FileChunk,
            Message::FileQuery { .. } => MessageKind::FileQuery,
            Message::FileAck { .. } => MessageKind::FileAck,
            Message::FileNack { .. } => MessageKind::FileNack,
            Message::FileCancel { .. } => MessageKind::FileCancel,
            Message::Fragment { .. } => MessageKind::Fragment,
            Message::RelData { .. } => MessageKind::RelData,
            Message::RelAck { .. } => MessageKind::RelAck,
            Message::SubscribeEvent { .. } => MessageKind::SubscribeEvent,
            Message::UnsubscribeEvent { .. } => MessageKind::UnsubscribeEvent,
            Message::FecShard { .. } => MessageKind::FecShard,
            Message::AnnounceDigest { .. } => MessageKind::AnnounceDigest,
            Message::AnnounceRequest => MessageKind::AnnounceRequest,
        }
    }

    /// Serializes the message body (without frame header).
    pub fn encode_payload(&self) -> Bytes {
        let mut buf = BytesMut::new();
        let mut w = WireWriter::new(&mut buf);
        self.write_body(&mut w);
        buf.freeze()
    }

    /// Serializes the message *with* a leading kind byte — the format used
    /// inside [`Message::RelData`] envelopes and fragments.
    pub fn encode_tagged(&self) -> Bytes {
        let mut buf = BytesMut::new();
        buf.extend_from_slice(&[self.kind().wire_tag()]);
        let mut w = WireWriter::new(&mut buf);
        self.write_body(&mut w);
        buf.freeze()
    }

    /// Inverse of [`Message::encode_tagged`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed input.
    pub fn decode_tagged(bytes: &[u8]) -> Result<Message, DecodeError> {
        let mut r = WireReader::new(bytes);
        let tag = r.get_u8()?;
        let kind = MessageKind::from_wire_tag(tag).ok_or(DecodeError::InvalidTag(tag))?;
        let msg = Self::read_body(kind, &mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(msg)
    }

    /// Deserializes a message of known `kind` from a frame payload.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on malformed or trailing input.
    pub fn decode_payload(kind: MessageKind, bytes: &[u8]) -> Result<Message, DecodeError> {
        let mut r = WireReader::new(bytes);
        let msg = Self::read_body(kind, &mut r)?;
        if !r.is_empty() {
            return Err(DecodeError::TrailingBytes { remaining: r.remaining() });
        }
        Ok(msg)
    }

    /// Wraps the message in a [`Frame`] from `src`.
    pub fn into_frame(self, src: NodeId) -> Frame {
        Frame::new(src, self.kind(), self.encode_payload())
    }

    /// Extracts the message from a decoded [`Frame`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] if the payload does not parse as the header's kind.
    pub fn from_frame(frame: &Frame) -> Result<Message, DecodeError> {
        Self::decode_payload(frame.header().kind, frame.payload())
    }

    fn write_body(&self, w: &mut WireWriter<'_>) {
        match self {
            Message::Hello { container, incarnation, fec_cap } => {
                w.put_str(container.as_str());
                w.put_varint(*incarnation);
                w.put_u8(*fec_cap);
            }
            Message::Heartbeat { incarnation, uptime_us, load_permille, fec_cap } => {
                w.put_varint(*incarnation);
                w.put_varint(*uptime_us);
                w.put_u16_le(*load_permille);
                w.put_u8(*fec_cap);
            }
            Message::Bye => {}
            Message::Announce { incarnation, entries } => {
                write_announce_body(w, *incarnation, entries);
            }
            Message::ServiceStatus { service_seq, name, state } => {
                w.put_varint(u64::from(*service_seq));
                w.put_str(name.as_str());
                w.put_u8(state.wire_tag());
            }
            Message::SubscribeVar { name, subscriber, need_initial } => {
                w.put_str(name.as_str());
                w.put_u32_le(subscriber.0);
                w.put_bool(*need_initial);
            }
            Message::UnsubscribeVar { name, subscriber } => {
                w.put_str(name.as_str());
                w.put_u32_le(subscriber.0);
            }
            Message::VarSample { name, seq, stamp_us, validity_us, trace, codec, payload } => {
                w.put_str(name.as_str());
                w.put_varint(*seq);
                w.put_varint(*stamp_us);
                w.put_varint(*validity_us);
                w.put_varint(*trace);
                w.put_u8(*codec);
                w.put_len_prefixed(payload);
            }
            Message::EventData { name, seq, stamp_us, trace, codec, payload } => {
                w.put_str(name.as_str());
                w.put_varint(*seq);
                w.put_varint(*stamp_us);
                w.put_varint(*trace);
                w.put_u8(*codec);
                w.put_len_prefixed(payload);
            }
            Message::CallRequest { request, function, target_seq, trace, codec, payload } => {
                w.put_varint(request.0);
                w.put_str(function.as_str());
                w.put_varint(u64::from(*target_seq));
                w.put_varint(*trace);
                w.put_u8(*codec);
                w.put_len_prefixed(payload);
            }
            Message::CallReply { request, status, trace, codec, payload } => {
                w.put_varint(request.0);
                w.put_u8(status.wire_tag());
                w.put_varint(*trace);
                w.put_u8(*codec);
                w.put_len_prefixed(payload);
            }
            Message::FileAnnounce { transfer, resource, revision, size, chunk_size, group } => {
                w.put_varint(transfer.0);
                w.put_str(resource.as_str());
                w.put_varint(u64::from(*revision));
                w.put_varint(*size);
                w.put_varint(u64::from(*chunk_size));
                w.put_u32_le(group.0);
            }
            Message::FileSubscribe { transfer, subscriber } => {
                w.put_varint(transfer.0);
                w.put_u32_le(subscriber.0);
            }
            Message::FileChunk { transfer, revision, index, payload } => {
                w.put_varint(transfer.0);
                w.put_varint(u64::from(*revision));
                w.put_varint(u64::from(*index));
                w.put_len_prefixed(payload);
            }
            Message::FileQuery { transfer, revision } => {
                w.put_varint(transfer.0);
                w.put_varint(u64::from(*revision));
            }
            Message::FileAck { transfer, revision, subscriber } => {
                w.put_varint(transfer.0);
                w.put_varint(u64::from(*revision));
                w.put_u32_le(subscriber.0);
            }
            Message::FileNack { transfer, revision, subscriber, runs } => {
                w.put_varint(transfer.0);
                w.put_varint(u64::from(*revision));
                w.put_u32_le(subscriber.0);
                w.put_varint(runs.len() as u64);
                for (start, len) in runs {
                    w.put_varint(u64::from(*start));
                    w.put_varint(u64::from(*len));
                }
            }
            Message::FileCancel { transfer } => {
                w.put_varint(transfer.0);
            }
            Message::Fragment { msg_id, index, count, payload } => {
                w.put_varint(*msg_id);
                w.put_varint(u64::from(*index));
                w.put_varint(u64::from(*count));
                w.put_len_prefixed(payload);
            }
            Message::RelData { channel, seq, payload } => {
                w.put_u16_le(*channel);
                w.put_varint(*seq);
                w.put_len_prefixed(payload);
            }
            Message::RelAck { channel, cumulative, sack, loss_permille } => {
                w.put_u16_le(*channel);
                w.put_u64_le(*cumulative);
                w.put_u64_le(*sack);
                w.put_u16_le(*loss_permille);
            }
            Message::SubscribeEvent { name, subscriber }
            | Message::UnsubscribeEvent { name, subscriber } => {
                w.put_str(name.as_str());
                w.put_u32_le(subscriber.0);
            }
            Message::FecShard { channel, group, index, k, r, payload } => {
                w.put_u16_le(*channel);
                w.put_varint(*group);
                w.put_u8(*index);
                w.put_u8(*k);
                w.put_u8(*r);
                w.put_len_prefixed(payload);
            }
            Message::AnnounceDigest { incarnation, entry_count, catalogue_hash } => {
                w.put_varint(*incarnation);
                w.put_varint(u64::from(*entry_count));
                w.put_u32_le(*catalogue_hash);
            }
            Message::AnnounceRequest => {}
        }
    }

    fn read_body(kind: MessageKind, r: &mut WireReader<'_>) -> Result<Message, DecodeError> {
        Ok(match kind {
            MessageKind::Hello => Message::Hello {
                container: read_name(r)?,
                incarnation: r.get_varint()?,
                fec_cap: r.get_u8()?,
            },
            MessageKind::Heartbeat => Message::Heartbeat {
                incarnation: r.get_varint()?,
                uptime_us: r.get_varint()?,
                load_permille: r.get_u16_le()?,
                fec_cap: r.get_u8()?,
            },
            MessageKind::Bye => Message::Bye,
            MessageKind::Announce => {
                let incarnation = r.get_varint()?;
                let n = checked_len(r.get_varint()?, MAX_LIST)?;
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let service_seq = read_u32(r)?;
                    let name = read_name(r)?;
                    let state_tag = r.get_u8()?;
                    let state = ServiceState::from_wire_tag(state_tag)
                        .ok_or(DecodeError::InvalidTag(state_tag))?;
                    let np = checked_len(r.get_varint()?, MAX_LIST)?;
                    let mut provides = Vec::with_capacity(np);
                    for _ in 0..np {
                        let ptag = r.get_u8()?;
                        let pname = read_name(r)?;
                        provides.push(match ptag {
                            0 => Provision::Variable {
                                name: pname,
                                ty: read_typedesc(r)?,
                                period_us: r.get_varint()?,
                                validity_us: r.get_varint()?,
                            },
                            1 => Provision::Event {
                                name: pname,
                                ty: if r.get_bool()? { Some(read_typedesc(r)?) } else { None },
                            },
                            2 => {
                                let nparams = checked_len(r.get_varint()?, MAX_LIST)?;
                                let mut params = Vec::with_capacity(nparams);
                                for _ in 0..nparams {
                                    params.push(read_typedesc(r)?);
                                }
                                let returns =
                                    if r.get_bool()? { Some(read_typedesc(r)?) } else { None };
                                Provision::Function {
                                    name: pname,
                                    sig: FunctionSig { params, returns },
                                }
                            }
                            3 => Provision::FileResource { name: pname },
                            other => return Err(DecodeError::InvalidTag(other)),
                        });
                    }
                    entries.push(AnnounceEntry { service_seq, name, state, provides });
                }
                Message::Announce { incarnation, entries }
            }
            MessageKind::ServiceStatus => {
                let service_seq = read_u32(r)?;
                let name = read_name(r)?;
                let tag = r.get_u8()?;
                let state = ServiceState::from_wire_tag(tag).ok_or(DecodeError::InvalidTag(tag))?;
                Message::ServiceStatus { service_seq, name, state }
            }
            MessageKind::SubscribeVar => Message::SubscribeVar {
                name: read_name(r)?,
                subscriber: NodeId(r.get_u32_le()?),
                need_initial: r.get_bool()?,
            },
            MessageKind::UnsubscribeVar => {
                Message::UnsubscribeVar { name: read_name(r)?, subscriber: NodeId(r.get_u32_le()?) }
            }
            MessageKind::VarSample => Message::VarSample {
                name: read_name(r)?,
                seq: r.get_varint()?,
                stamp_us: r.get_varint()?,
                validity_us: r.get_varint()?,
                trace: r.get_varint()?,
                codec: r.get_u8()?,
                payload: read_blob(r)?,
            },
            MessageKind::EventData => Message::EventData {
                name: read_name(r)?,
                seq: r.get_varint()?,
                stamp_us: r.get_varint()?,
                trace: r.get_varint()?,
                codec: r.get_u8()?,
                payload: read_blob(r)?,
            },
            MessageKind::CallRequest => Message::CallRequest {
                request: RequestId(r.get_varint()?),
                function: read_name(r)?,
                target_seq: read_u32(r)?,
                trace: r.get_varint()?,
                codec: r.get_u8()?,
                payload: read_blob(r)?,
            },
            MessageKind::CallReply => {
                let request = RequestId(r.get_varint()?);
                let tag = r.get_u8()?;
                let status = CallStatus::from_wire_tag(tag).ok_or(DecodeError::InvalidTag(tag))?;
                Message::CallReply {
                    request,
                    status,
                    trace: r.get_varint()?,
                    codec: r.get_u8()?,
                    payload: read_blob(r)?,
                }
            }
            MessageKind::FileAnnounce => Message::FileAnnounce {
                transfer: TransferId(r.get_varint()?),
                resource: read_name(r)?,
                revision: read_u32(r)?,
                size: r.get_varint()?,
                chunk_size: read_u32(r)?,
                group: GroupId(r.get_u32_le()?),
            },
            MessageKind::FileSubscribe => Message::FileSubscribe {
                transfer: TransferId(r.get_varint()?),
                subscriber: NodeId(r.get_u32_le()?),
            },
            MessageKind::FileChunk => Message::FileChunk {
                transfer: TransferId(r.get_varint()?),
                revision: read_u32(r)?,
                index: read_u32(r)?,
                payload: read_blob(r)?,
            },
            MessageKind::FileQuery => {
                Message::FileQuery { transfer: TransferId(r.get_varint()?), revision: read_u32(r)? }
            }
            MessageKind::FileAck => Message::FileAck {
                transfer: TransferId(r.get_varint()?),
                revision: read_u32(r)?,
                subscriber: NodeId(r.get_u32_le()?),
            },
            MessageKind::FileNack => {
                let transfer = TransferId(r.get_varint()?);
                let revision = read_u32(r)?;
                let subscriber = NodeId(r.get_u32_le()?);
                let n = checked_len(r.get_varint()?, MAX_LIST)?;
                let mut runs = Vec::with_capacity(n);
                for _ in 0..n {
                    runs.push((read_u32(r)?, read_u32(r)?));
                }
                Message::FileNack { transfer, revision, subscriber, runs }
            }
            MessageKind::FileCancel => {
                Message::FileCancel { transfer: TransferId(r.get_varint()?) }
            }
            MessageKind::Fragment => Message::Fragment {
                msg_id: r.get_varint()?,
                index: read_u32(r)?,
                count: read_u32(r)?,
                payload: read_blob(r)?,
            },
            MessageKind::RelData => Message::RelData {
                channel: r.get_u16_le()?,
                seq: r.get_varint()?,
                payload: read_blob(r)?,
            },
            MessageKind::RelAck => Message::RelAck {
                channel: r.get_u16_le()?,
                cumulative: r.get_u64_le()?,
                sack: r.get_u64_le()?,
                loss_permille: r.get_u16_le()?,
            },
            MessageKind::SubscribeEvent => {
                Message::SubscribeEvent { name: read_name(r)?, subscriber: NodeId(r.get_u32_le()?) }
            }
            MessageKind::UnsubscribeEvent => Message::UnsubscribeEvent {
                name: read_name(r)?,
                subscriber: NodeId(r.get_u32_le()?),
            },
            MessageKind::FecShard => Message::FecShard {
                channel: r.get_u16_le()?,
                group: r.get_varint()?,
                index: r.get_u8()?,
                k: r.get_u8()?,
                r: r.get_u8()?,
                payload: read_blob(r)?,
            },
            MessageKind::AnnounceDigest => Message::AnnounceDigest {
                incarnation: r.get_varint()?,
                entry_count: read_u32(r)?,
                catalogue_hash: r.get_u32_le()?,
            },
            MessageKind::AnnounceRequest => Message::AnnounceRequest,
        })
    }
}

fn write_announce_body(w: &mut WireWriter<'_>, incarnation: u64, entries: &[AnnounceEntry]) {
    w.put_varint(incarnation);
    w.put_varint(entries.len() as u64);
    for e in entries {
        w.put_varint(u64::from(e.service_seq));
        w.put_str(e.name.as_str());
        w.put_u8(e.state.wire_tag());
        w.put_varint(e.provides.len() as u64);
        for p in &e.provides {
            w.put_u8(p.wire_tag());
            w.put_str(p.name().as_str());
            match p {
                Provision::Variable { ty, period_us, validity_us, .. } => {
                    write_typedesc(w, ty);
                    w.put_varint(*period_us);
                    w.put_varint(*validity_us);
                }
                Provision::Event { ty, .. } => match ty {
                    Some(t) => {
                        w.put_u8(1);
                        write_typedesc(w, t);
                    }
                    None => w.put_u8(0),
                },
                Provision::Function { sig, .. } => {
                    w.put_varint(sig.params.len() as u64);
                    for pty in &sig.params {
                        write_typedesc(w, pty);
                    }
                    match &sig.returns {
                        Some(rty) => {
                            w.put_u8(1);
                            write_typedesc(w, rty);
                        }
                        None => w.put_u8(0),
                    }
                }
                Provision::FileResource { .. } => {}
            }
        }
    }
}

/// Canonical digest of a full catalogue announce: FNV-1a over the exact
/// `Announce` body encoding of `(incarnation, entries)`.
///
/// Both ends of the digest-gossip protocol hash through this function —
/// the announcer before broadcasting (stored alongside `last_announce`
/// state), the receiver over the decoded entries it applied — so equal
/// catalogues always hash equal regardless of which side computed it
/// (the wire encoding is canonical).
pub fn announce_hash(incarnation: u64, entries: &[AnnounceEntry]) -> u32 {
    let mut buf = BytesMut::new();
    let mut w = WireWriter::new(&mut buf);
    write_announce_body(&mut w, incarnation, entries);
    let mut h: u32 = 0x811c_9dc5;
    for &b in buf.iter() {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn write_typedesc(w: &mut WireWriter<'_>, ty: &DataType) {
    let bytes = typedesc::encode_type_to_vec(ty);
    w.put_len_prefixed(&bytes);
}

fn read_typedesc(r: &mut WireReader<'_>) -> Result<DataType, DecodeError> {
    let bytes = r.get_len_prefixed(MAX_EMBEDDED)?;
    typedesc::decode_type_from_slice(bytes)
}

fn read_name(r: &mut WireReader<'_>) -> Result<Name, DecodeError> {
    let s = r.get_str(256)?;
    Name::new(s).map_err(|_| DecodeError::InvalidName)
}

fn read_blob(r: &mut WireReader<'_>) -> Result<Bytes, DecodeError> {
    Ok(Bytes::copy_from_slice(r.get_len_prefixed(MAX_EMBEDDED)?))
}

fn read_u32(r: &mut WireReader<'_>) -> Result<u32, DecodeError> {
    u32::try_from(r.get_varint()?).map_err(|_| DecodeError::VarintOverflow)
}

fn checked_len(declared: u64, limit: usize) -> Result<usize, DecodeError> {
    if declared > limit as u64 {
        return Err(DecodeError::LengthOverflow { declared, limit });
    }
    Ok(declared as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_presentation::StructType;

    fn name(s: &str) -> Name {
        Name::new(s).unwrap()
    }

    fn sample_messages() -> Vec<Message> {
        let pos_ty = DataType::Struct(
            StructType::new("Position")
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("lon", DataType::F64)
                .unwrap(),
        );
        vec![
            Message::Hello { container: name("fcs-node"), incarnation: 3, fec_cap: 4 },
            Message::Heartbeat {
                incarnation: 3,
                uptime_us: 1_000_000,
                load_permille: 250,
                fec_cap: 4,
            },
            Message::Bye,
            Message::Announce {
                incarnation: 3,
                entries: vec![AnnounceEntry {
                    service_seq: 1,
                    name: name("gps"),
                    state: ServiceState::Running,
                    provides: vec![
                        Provision::Variable {
                            name: name("gps/position"),
                            ty: pos_ty.clone(),
                            period_us: 50_000,
                            validity_us: 200_000,
                        },
                        Provision::Event { name: name("gps/fix-lost"), ty: None },
                        Provision::Event { name: name("gps/glitch"), ty: Some(DataType::U8) },
                        Provision::Function {
                            name: name("gps/self-test"),
                            sig: FunctionSig {
                                params: vec![DataType::U8],
                                returns: Some(DataType::Bool),
                            },
                        },
                        Provision::Function {
                            name: name("gps/reset"),
                            sig: FunctionSig { params: vec![], returns: None },
                        },
                        Provision::FileResource { name: name("gps/almanac") },
                    ],
                }],
            },
            Message::ServiceStatus {
                service_seq: 1,
                name: name("gps"),
                state: ServiceState::Degraded,
            },
            Message::SubscribeVar {
                name: name("gps/position"),
                subscriber: NodeId(4),
                need_initial: true,
            },
            Message::UnsubscribeVar { name: name("gps/position"), subscriber: NodeId(4) },
            Message::VarSample {
                name: name("gps/position"),
                seq: 991,
                stamp_us: 123_456,
                validity_us: 200_000,
                trace: 991,
                codec: 0,
                payload: Bytes::from_static(&[1, 2, 3]),
            },
            Message::EventData {
                name: name("mc/photo-now"),
                seq: 7,
                stamp_us: 55,
                trace: 12,
                codec: 0,
                payload: Bytes::new(),
            },
            Message::CallRequest {
                request: RequestId(42),
                function: name("camera/prepare"),
                target_seq: 2,
                trace: 77,
                codec: 0,
                payload: Bytes::from_static(&[9]),
            },
            Message::CallReply {
                request: RequestId(42),
                status: CallStatus::Ok,
                trace: 77,
                codec: 0,
                payload: Bytes::from_static(&[1]),
            },
            Message::FileAnnounce {
                transfer: TransferId(5),
                resource: name("camera/img-003"),
                revision: 2,
                size: 1_048_576,
                chunk_size: 1024,
                group: GroupId(7),
            },
            Message::FileSubscribe { transfer: TransferId(5), subscriber: NodeId(2) },
            Message::FileChunk {
                transfer: TransferId(5),
                revision: 2,
                index: 17,
                payload: Bytes::from_static(b"chunkdata"),
            },
            Message::FileQuery { transfer: TransferId(5), revision: 2 },
            Message::FileAck { transfer: TransferId(5), revision: 2, subscriber: NodeId(2) },
            Message::FileNack {
                transfer: TransferId(5),
                revision: 2,
                subscriber: NodeId(2),
                runs: vec![(0, 3), (17, 1), (100, 24)],
            },
            Message::FileCancel { transfer: TransferId(5) },
            Message::Fragment {
                msg_id: 88,
                index: 1,
                count: 3,
                payload: Bytes::from_static(b"frag"),
            },
            Message::RelData { channel: 2, seq: 10, payload: Bytes::from_static(b"inner") },
            Message::RelAck { channel: 2, cumulative: 9, sack: 0b101, loss_permille: 125 },
            Message::SubscribeEvent { name: name("mc/photo-now"), subscriber: NodeId(3) },
            Message::UnsubscribeEvent { name: name("mc/photo-now"), subscriber: NodeId(3) },
            Message::FecShard {
                channel: 2,
                group: 40,
                index: 0x80,
                k: 4,
                r: 1,
                payload: Bytes::from_static(b"xor-lane"),
            },
            Message::AnnounceDigest { incarnation: 3, entry_count: 1, catalogue_hash: 0xDEAD_BEEF },
            Message::AnnounceRequest,
        ]
    }

    #[test]
    fn every_message_roundtrips_via_payload() {
        for msg in sample_messages() {
            let bytes = msg.encode_payload();
            let back = Message::decode_payload(msg.kind(), &bytes).unwrap();
            assert_eq!(back, msg);
        }
    }

    #[test]
    fn every_message_roundtrips_via_frame() {
        for msg in sample_messages() {
            let frame = msg.clone().into_frame(NodeId(11));
            let wire = frame.encode();
            let parsed = Frame::decode(&wire).unwrap();
            assert_eq!(parsed.header().src, NodeId(11));
            assert_eq!(Message::from_frame(&parsed).unwrap(), msg);
        }
    }

    #[test]
    fn every_message_roundtrips_via_tagged() {
        for msg in sample_messages() {
            let bytes = msg.encode_tagged();
            assert_eq!(Message::decode_tagged(&bytes).unwrap(), msg);
        }
    }

    #[test]
    fn sample_covers_every_kind() {
        let mut kinds: Vec<MessageKind> = sample_messages().iter().map(|m| m.kind()).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), MessageKind::ALL.len(), "fixture must cover all kinds");
    }

    #[test]
    fn kind_tags_roundtrip() {
        for &k in MessageKind::ALL {
            assert_eq!(MessageKind::from_wire_tag(k.wire_tag()), Some(k));
        }
        assert_eq!(MessageKind::from_wire_tag(0xFF), None);
    }

    #[test]
    fn state_and_status_tags_roundtrip() {
        for s in [
            ServiceState::Starting,
            ServiceState::Running,
            ServiceState::Degraded,
            ServiceState::Stopped,
            ServiceState::Failed,
        ] {
            assert_eq!(ServiceState::from_wire_tag(s.wire_tag()), Some(s));
        }
        assert!(ServiceState::from_wire_tag(9).is_none());
        for s in [
            CallStatus::Ok,
            CallStatus::AppError,
            CallStatus::NoSuchFunction,
            CallStatus::ServiceUnavailable,
            CallStatus::Timeout,
        ] {
            assert_eq!(CallStatus::from_wire_tag(s.wire_tag()), Some(s));
        }
        assert!(CallStatus::from_wire_tag(9).is_none());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = Message::Bye.encode_payload().to_vec();
        bytes.push(1);
        assert!(matches!(
            Message::decode_payload(MessageKind::Bye, &bytes),
            Err(DecodeError::TrailingBytes { .. })
        ));
    }

    #[test]
    fn truncated_messages_rejected() {
        for msg in sample_messages() {
            let bytes = msg.encode_payload();
            if bytes.is_empty() {
                continue;
            }
            // Cutting the last byte must fail (every encoding is minimal).
            let cut = &bytes[..bytes.len() - 1];
            assert!(
                Message::decode_payload(msg.kind(), cut).is_err(),
                "truncated {:?} decoded",
                msg.kind()
            );
        }
    }

    #[test]
    fn invalid_names_rejected() {
        // Hand-craft a Hello with a bad name.
        let mut buf = BytesMut::new();
        let mut w = WireWriter::new(&mut buf);
        w.put_str("9bad name");
        w.put_varint(0);
        assert_eq!(
            Message::decode_payload(MessageKind::Hello, &buf),
            Err(DecodeError::InvalidName)
        );
    }

    #[test]
    fn announce_hash_is_canonical_across_a_roundtrip() {
        let Some(Message::Announce { incarnation, entries }) =
            sample_messages().into_iter().find(|m| matches!(m, Message::Announce { .. }))
        else {
            panic!("fixture has an Announce");
        };
        let sender_side = announce_hash(incarnation, &entries);
        // The receiver hashes the entries it *decoded*; equal catalogues
        // must digest equal.
        let wire = Message::Announce { incarnation, entries: entries.clone() }.encode_payload();
        let Ok(Message::Announce { incarnation: inc2, entries: decoded }) =
            Message::decode_payload(MessageKind::Announce, &wire)
        else {
            panic!("announce roundtrips");
        };
        assert_eq!(announce_hash(inc2, &decoded), sender_side);
        // Any catalogue change — or a new incarnation — changes the digest.
        assert_ne!(announce_hash(incarnation + 1, &entries), sender_side);
        assert_ne!(announce_hash(incarnation, &entries[..0]), sender_side);
    }

    #[test]
    fn announce_list_limit_enforced() {
        let mut buf = BytesMut::new();
        let mut w = WireWriter::new(&mut buf);
        w.put_varint(1); // incarnation
        w.put_varint(1_000_000); // entry count over limit
        assert!(matches!(
            Message::decode_payload(MessageKind::Announce, &buf),
            Err(DecodeError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn available_states() {
        assert!(ServiceState::Running.is_available());
        assert!(ServiceState::Degraded.is_available());
        assert!(!ServiceState::Failed.is_available());
        assert!(!ServiceState::Stopped.is_available());
        assert!(!ServiceState::Starting.is_available());
    }
}
