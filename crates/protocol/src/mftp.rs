//! Bulk file distribution, loosely based on Starburst MFTP (paper §4.4).
//!
//! Three phases per revision:
//!
//! 1. **announce** — the publisher multicasts a [`Message::FileAnnounce`];
//!    interested nodes reply with [`Message::FileSubscribe`].
//! 2. **transfer** — the publisher multicasts numbered
//!    [`Message::FileChunk`]s; receivers fill a [`ChunkBitmap`].
//! 3. **completion** — the publisher multicasts [`Message::FileQuery`];
//!    complete receivers answer [`Message::FileAck`] (and are removed from
//!    the subscriber list), incomplete ones answer [`Message::FileNack`]
//!    with a *compressed run list* of missing chunks. The publisher then
//!    starts a new transfer round containing only the requested chunks, and
//!    the process iterates "until the subscribers list is empty".
//!
//! Phases overlap per subscriber: a node can subscribe mid-transfer (late
//! join), collect the tail of the current round, and NACK the head during
//! completion. Revision bumps restart reception under the policy chosen by
//! the receiver (paper: receivers "can decide if they go on with the
//! transfer in progress, they start a new transfer with the new revision or
//! both").

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use bytes::Bytes;

use marea_presentation::Name;

use crate::error::ProtocolError;
use crate::ids::{GroupId, NodeId, TransferId};
use crate::messages::Message;

/// Maximum number of `(start, len)` runs carried in one NACK. If more chunks
/// are missing than fit, the NACK covers the earliest runs; later query
/// rounds collect the rest.
pub const MAX_NACK_RUNS: usize = 256;

/// Default chunk payload size in bytes.
pub const DEFAULT_CHUNK_SIZE: u32 = 1024;

/// A fixed-size bitmap tracking which chunks of a revision have arrived.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkBitmap {
    words: Vec<u64>,
    total: u32,
    set_count: u32,
}

impl ChunkBitmap {
    /// Creates an empty bitmap for `total` chunks.
    pub fn new(total: u32) -> Self {
        ChunkBitmap { words: vec![0; (total as usize).div_ceil(64)], total, set_count: 0 }
    }

    /// Total chunk count.
    pub fn total(&self) -> u32 {
        self.total
    }

    /// Chunks received so far.
    pub fn set_count(&self) -> u32 {
        self.set_count
    }

    /// `true` once every chunk is present.
    pub fn is_complete(&self) -> bool {
        self.set_count == self.total
    }

    /// Marks chunk `index` received; returns `true` if it was new.
    ///
    /// # Panics
    ///
    /// Panics if `index >= total` — callers validate indices against the
    /// announced chunk count first.
    pub fn set(&mut self, index: u32) -> bool {
        assert!(index < self.total, "chunk index {index} out of range {}", self.total);
        let (w, b) = (index as usize / 64, index % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.set_count += 1;
        true
    }

    /// `true` if chunk `index` has been received.
    pub fn contains(&self, index: u32) -> bool {
        if index >= self.total {
            return false;
        }
        self.words[index as usize / 64] & (1u64 << (index % 64)) != 0
    }

    /// Missing chunks as compressed `(start, len)` runs, at most `max_runs`
    /// entries (earliest first).
    pub fn missing_runs(&self, max_runs: usize) -> Vec<(u32, u32)> {
        let mut runs = Vec::new();
        let mut i = 0u32;
        while i < self.total && runs.len() < max_runs {
            if self.contains(i) {
                i += 1;
                continue;
            }
            let start = i;
            while i < self.total && !self.contains(i) {
                i += 1;
            }
            runs.push((start, i - start));
        }
        runs
    }
}

/// Counters exposed by the sender for benchmarking (experiment C4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SenderStats {
    /// Data chunks transmitted (including repair rounds).
    pub chunks_sent: u64,
    /// Chunk payload bytes transmitted.
    pub chunk_bytes: u64,
    /// Completion-query rounds executed.
    pub rounds: u32,
    /// Subscribers served to completion.
    pub completed: u32,
    /// Subscribers evicted for unresponsiveness.
    pub evicted: u32,
}

/// Publisher-side state machine for one resource transfer session.
///
/// The sender is poll-driven and clock-free: the container asks for the next
/// burst of chunks ([`FileSender::next_chunks`]) at its own rate, then
/// enters the completion phase ([`FileSender::query`]) when the round
/// drains, feeding back ACK/NACK responses.
#[derive(Debug)]
pub struct FileSender {
    transfer: TransferId,
    resource: Name,
    revision: u32,
    data: Bytes,
    chunk_size: u32,
    total_chunks: u32,
    group: GroupId,
    subscribers: BTreeSet<NodeId>,
    /// Chunk indices queued for the current round (deduplicated).
    queue: VecDeque<u32>,
    queued: BTreeSet<u32>,
    /// Rounds a subscriber has survived without acking, for eviction.
    stale_rounds: BTreeMap<NodeId, u32>,
    max_stale_rounds: u32,
    stats: SenderStats,
}

impl FileSender {
    /// Creates a sender for `data` and returns it; call
    /// [`FileSender::announce`] to obtain the kickoff message.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] when `chunk_size` is zero or the file
    /// needs more than `u32::MAX` chunks.
    pub fn new(
        transfer: TransferId,
        resource: Name,
        revision: u32,
        data: Bytes,
        chunk_size: u32,
        group: GroupId,
    ) -> Result<Self, ProtocolError> {
        if chunk_size == 0 {
            return Err(ProtocolError::BadTransfer("chunk size of zero"));
        }
        let total = data.len().div_ceil(chunk_size as usize).max(1);
        let total_chunks =
            u32::try_from(total).map_err(|_| ProtocolError::BadTransfer("too many chunks"))?;
        Ok(FileSender {
            transfer,
            resource,
            revision,
            data,
            chunk_size,
            total_chunks,
            group,
            subscribers: BTreeSet::new(),
            queue: VecDeque::new(),
            queued: BTreeSet::new(),
            stale_rounds: BTreeMap::new(),
            max_stale_rounds: 8,
            stats: SenderStats::default(),
        })
    }

    /// Transfer session id.
    pub fn transfer(&self) -> TransferId {
        self.transfer
    }

    /// Current revision.
    pub fn revision(&self) -> u32 {
        self.revision
    }

    /// Total chunks in the current revision.
    pub fn total_chunks(&self) -> u32 {
        self.total_chunks
    }

    /// The payload of the current revision (cheap clone; used by the
    /// container's same-node bypass, §4.4).
    pub fn data(&self) -> Bytes {
        self.data.clone()
    }

    /// Active (incomplete) subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// The announce message for the current revision (multicast; also resent
    /// at each round start so late joiners hear it).
    pub fn announce(&self) -> Message {
        Message::FileAnnounce {
            transfer: self.transfer,
            resource: self.resource.clone(),
            revision: self.revision,
            size: self.data.len() as u64,
            chunk_size: self.chunk_size,
            group: self.group,
        }
    }

    /// Registers a subscriber. Joining mid-round is allowed (late join);
    /// the node catches the remaining chunks and NACKs the head at the next
    /// completion query. Queues a full send on first subscriber.
    pub fn on_subscribe(&mut self, node: NodeId) {
        if self.subscribers.insert(node) {
            self.stale_rounds.insert(node, 0);
            if self.subscribers.len() == 1 && self.queue.is_empty() {
                self.queue_all();
            }
        }
    }

    fn queue_all(&mut self) {
        for i in 0..self.total_chunks {
            self.enqueue(i);
        }
    }

    fn enqueue(&mut self, index: u32) {
        if self.queued.insert(index) {
            self.queue.push_back(index);
        }
    }

    /// Pops up to `budget` chunk messages for transmission. An empty result
    /// with active subscribers means the round is over: send
    /// [`FileSender::query`].
    pub fn next_chunks(&mut self, budget: usize) -> Vec<Message> {
        let mut out = Vec::new();
        while out.len() < budget {
            let Some(index) = self.queue.pop_front() else { break };
            self.queued.remove(&index);
            let start = index as usize * self.chunk_size as usize;
            let end = usize::min(start + self.chunk_size as usize, self.data.len());
            let payload = self.data.slice(start..end);
            self.stats.chunks_sent += 1;
            self.stats.chunk_bytes += payload.len() as u64;
            out.push(Message::FileChunk {
                transfer: self.transfer,
                revision: self.revision,
                index,
                payload,
            });
        }
        out
    }

    /// `true` while chunks remain queued in the current round.
    pub fn has_pending_chunks(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Starts a completion round: bumps per-subscriber staleness, evicts
    /// unresponsive nodes, and returns the query message (multicast).
    pub fn query(&mut self) -> Message {
        self.stats.rounds += 1;
        let mut evicted = Vec::new();
        for (&node, rounds) in self.stale_rounds.iter_mut() {
            *rounds += 1;
            if *rounds > self.max_stale_rounds {
                evicted.push(node);
            }
        }
        for node in evicted {
            self.subscribers.remove(&node);
            self.stale_rounds.remove(&node);
            self.stats.evicted += 1;
        }
        Message::FileQuery { transfer: self.transfer, revision: self.revision }
    }

    /// Processes a subscriber ACK: the node holds every chunk and leaves the
    /// subscriber list ("it removes finished receivers from its subscribers
    /// list").
    pub fn on_ack(&mut self, node: NodeId, revision: u32) {
        if revision != self.revision {
            return;
        }
        if self.subscribers.remove(&node) {
            self.stale_rounds.remove(&node);
            self.stats.completed += 1;
        }
    }

    /// Processes a subscriber NACK: queues the missing runs for the next
    /// transfer round.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] when a run exceeds the chunk range.
    pub fn on_nack(
        &mut self,
        node: NodeId,
        revision: u32,
        runs: &[(u32, u32)],
    ) -> Result<(), ProtocolError> {
        if revision != self.revision {
            return Ok(()); // stale response from a previous revision
        }
        if !self.subscribers.contains(&node) {
            // NACK from a node we never saw subscribe (e.g. its subscribe
            // was lost but it heard the multicast chunks): adopt it.
            self.on_subscribe(node);
        }
        self.stale_rounds.insert(node, 0); // responding = alive
        for &(start, len) in runs {
            let end = start.checked_add(len).ok_or(ProtocolError::BadTransfer("run overflow"))?;
            if end > self.total_chunks || len == 0 {
                return Err(ProtocolError::BadTransfer("nack run out of range"));
            }
            for i in start..end {
                self.enqueue(i);
            }
        }
        Ok(())
    }

    /// `true` once every subscriber has acknowledged the current revision.
    pub fn is_complete(&self) -> bool {
        self.subscribers.is_empty()
    }

    /// Replaces the payload with a new revision: increments the revision
    /// number, clears the queue, re-queues everything and returns the new
    /// announce message. Subscribers are kept — they will be notified via
    /// the announce and restart under their own policy.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] if the new payload needs too many
    /// chunks.
    pub fn bump_revision(&mut self, data: Bytes) -> Result<Message, ProtocolError> {
        let total = data.len().div_ceil(self.chunk_size as usize).max(1);
        let total_chunks =
            u32::try_from(total).map_err(|_| ProtocolError::BadTransfer("too many chunks"))?;
        self.revision += 1;
        self.data = data;
        self.total_chunks = total_chunks;
        self.queue.clear();
        self.queued.clear();
        for rounds in self.stale_rounds.values_mut() {
            *rounds = 0;
        }
        if !self.subscribers.is_empty() {
            self.queue_all();
        }
        Ok(self.announce())
    }
}

/// What a receiver does when the publisher announces a newer revision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RevisionPolicy {
    /// Abandon the old revision and restart on the new one (default).
    #[default]
    Restart,
    /// Finish the revision in progress; ignore newer announces until done.
    FinishCurrent,
}

/// Outcome of feeding an announce to a receiver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnnounceOutcome {
    /// The announce matches the revision in progress (or repeats it).
    Unchanged,
    /// The receiver restarted on a newer revision.
    Restarted,
    /// A newer revision exists but policy keeps the current one.
    DeferredNewRevision,
}

/// Receiver-side state machine for one transfer session.
#[derive(Debug)]
pub struct FileReceiver {
    transfer: TransferId,
    resource: Name,
    node: NodeId,
    revision: u32,
    size: u64,
    chunk_size: u32,
    bitmap: ChunkBitmap,
    data: Vec<u8>,
    policy: RevisionPolicy,
    pending_revision: Option<Message>,
}

impl FileReceiver {
    /// Creates a receiver from a heard announce; pair with the returned
    /// [`Message::FileSubscribe`] sent back to the publisher.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] on inconsistent announce metadata.
    pub fn from_announce(
        msg: &Message,
        node: NodeId,
        policy: RevisionPolicy,
    ) -> Result<(Self, Message), ProtocolError> {
        let Message::FileAnnounce { transfer, resource, revision, size, chunk_size, .. } = msg
        else {
            return Err(ProtocolError::BadTransfer("not an announce"));
        };
        if *chunk_size == 0 {
            return Err(ProtocolError::BadTransfer("chunk size of zero"));
        }
        let total = size.div_ceil(u64::from(*chunk_size)).max(1);
        let total_chunks =
            u32::try_from(total).map_err(|_| ProtocolError::BadTransfer("too many chunks"))?;
        if *size > crate::frame::MAX_FRAME_PAYLOAD as u64 * 1024 {
            return Err(ProtocolError::BadTransfer("file too large"));
        }
        let rx = FileReceiver {
            transfer: *transfer,
            resource: resource.clone(),
            node,
            revision: *revision,
            size: *size,
            chunk_size: *chunk_size,
            bitmap: ChunkBitmap::new(total_chunks),
            data: vec![0; *size as usize],
            policy,
            pending_revision: None,
        };
        let sub = Message::FileSubscribe { transfer: *transfer, subscriber: node };
        Ok((rx, sub))
    }

    /// Transfer session id.
    pub fn transfer(&self) -> TransferId {
        self.transfer
    }

    /// Resource name.
    pub fn resource(&self) -> &Name {
        &self.resource
    }

    /// Revision currently being received.
    pub fn revision(&self) -> u32 {
        self.revision
    }

    /// Reception progress as `(received, total)` chunks.
    pub fn progress(&self) -> (u32, u32) {
        (self.bitmap.set_count(), self.bitmap.total())
    }

    /// `true` once every chunk of the current revision is present.
    pub fn is_complete(&self) -> bool {
        self.bitmap.is_complete()
    }

    /// Consumes the receiver, returning the file content.
    ///
    /// # Panics
    ///
    /// Panics when called before completion; guard with
    /// [`FileReceiver::is_complete`].
    pub fn into_data(self) -> Bytes {
        assert!(self.bitmap.is_complete(), "into_data before completion");
        Bytes::from(self.data)
    }

    /// Processes a chunk; returns `true` when this chunk completed the file.
    ///
    /// Chunks for other revisions or out-of-range indices are ignored (the
    /// publisher may still be flushing an older round).
    pub fn on_chunk(&mut self, revision: u32, index: u32, payload: &[u8]) -> bool {
        if revision != self.revision || index >= self.bitmap.total() {
            return false;
        }
        let start = index as usize * self.chunk_size as usize;
        let expected_len =
            usize::min(self.chunk_size as usize, self.data.len().saturating_sub(start));
        if payload.len() != expected_len {
            return false; // inconsistent with announce; drop
        }
        if self.bitmap.set(index) {
            self.data[start..start + expected_len].copy_from_slice(payload);
        }
        self.bitmap.is_complete()
    }

    /// Answers a completion query with an ACK (complete) or a compressed
    /// NACK (missing runs). Queries for other revisions are ignored.
    pub fn on_query(&self, revision: u32) -> Option<Message> {
        if revision != self.revision {
            return None;
        }
        if self.is_complete() {
            Some(Message::FileAck {
                transfer: self.transfer,
                revision: self.revision,
                subscriber: self.node,
            })
        } else {
            Some(Message::FileNack {
                transfer: self.transfer,
                revision: self.revision,
                subscriber: self.node,
                runs: self.bitmap.missing_runs(MAX_NACK_RUNS),
            })
        }
    }

    /// Processes a (re-)announce. Repeats of the current revision are
    /// harmless; newer revisions restart or defer according to policy.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadTransfer`] on malformed announces.
    pub fn on_announce(&mut self, msg: &Message) -> Result<AnnounceOutcome, ProtocolError> {
        let Message::FileAnnounce { transfer, revision, size, chunk_size, .. } = msg else {
            return Err(ProtocolError::BadTransfer("not an announce"));
        };
        if *transfer != self.transfer || *revision <= self.revision {
            return Ok(AnnounceOutcome::Unchanged);
        }
        match self.policy {
            RevisionPolicy::FinishCurrent if !self.is_complete() => {
                self.pending_revision = Some(msg.clone());
                Ok(AnnounceOutcome::DeferredNewRevision)
            }
            _ => {
                if *chunk_size == 0 {
                    return Err(ProtocolError::BadTransfer("chunk size of zero"));
                }
                let total = size.div_ceil(u64::from(*chunk_size)).max(1);
                let total_chunks = u32::try_from(total)
                    .map_err(|_| ProtocolError::BadTransfer("too many chunks"))?;
                self.revision = *revision;
                self.size = *size;
                self.chunk_size = *chunk_size;
                self.bitmap = ChunkBitmap::new(total_chunks);
                self.data = vec![0; *size as usize];
                Ok(AnnounceOutcome::Restarted)
            }
        }
    }

    /// The deferred newer announce, if policy was
    /// [`RevisionPolicy::FinishCurrent`] and one arrived.
    pub fn pending_revision(&self) -> Option<&Message> {
        self.pending_revision.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(s: &str) -> Name {
        Name::new(s).unwrap()
    }

    fn sender(data: &[u8], chunk: u32) -> FileSender {
        FileSender::new(
            TransferId(1),
            name("img"),
            1,
            Bytes::copy_from_slice(data),
            chunk,
            GroupId(5),
        )
        .unwrap()
    }

    fn receiver(s: &FileSender, node: NodeId) -> FileReceiver {
        let (rx, _sub) =
            FileReceiver::from_announce(&s.announce(), node, RevisionPolicy::Restart).unwrap();
        rx
    }

    /// Delivers every queued chunk from `s` to the given receivers, with a
    /// loss predicate deciding which (receiver, chunk) pairs drop.
    fn run_round(
        s: &mut FileSender,
        rxs: &mut [FileReceiver],
        mut lose: impl FnMut(usize, u32) -> bool,
    ) {
        loop {
            let chunks = s.next_chunks(16);
            if chunks.is_empty() {
                break;
            }
            for c in &chunks {
                if let Message::FileChunk { revision, index, payload, .. } = c {
                    for (ri, rx) in rxs.iter_mut().enumerate() {
                        if !lose(ri, *index) {
                            rx.on_chunk(*revision, *index, payload);
                        }
                    }
                }
            }
        }
    }

    /// Runs completion: query + responses fed back. Returns true if all done.
    fn run_completion(s: &mut FileSender, rxs: &[FileReceiver]) -> bool {
        let q = s.query();
        let Message::FileQuery { revision, .. } = q else { panic!() };
        for rx in rxs {
            match rx.on_query(revision) {
                Some(Message::FileAck { subscriber, revision, .. }) => {
                    s.on_ack(subscriber, revision);
                }
                Some(Message::FileNack { subscriber, revision, runs, .. }) => {
                    s.on_nack(subscriber, revision, &runs).unwrap();
                }
                _ => {}
            }
        }
        s.is_complete()
    }

    #[test]
    fn bitmap_runs_compress() {
        let mut b = ChunkBitmap::new(10);
        assert_eq!(b.missing_runs(10), vec![(0, 10)]);
        b.set(0);
        b.set(1);
        b.set(5);
        assert_eq!(b.missing_runs(10), vec![(2, 3), (6, 4)]);
        assert_eq!(b.missing_runs(1), vec![(2, 3)], "run cap respected");
        for i in 0..10 {
            if !b.contains(i) {
                b.set(i);
            }
        }
        assert!(b.is_complete());
        assert!(b.missing_runs(10).is_empty());
    }

    #[test]
    fn bitmap_rejects_double_set_and_tracks_count() {
        let mut b = ChunkBitmap::new(100);
        assert!(b.set(64));
        assert!(!b.set(64));
        assert_eq!(b.set_count(), 1);
        assert!(b.contains(64));
        assert!(!b.contains(65));
        assert!(!b.contains(1000));
    }

    #[test]
    fn lossless_single_subscriber_completes_in_one_round() {
        let data: Vec<u8> = (0..5000u32).map(|i| (i % 251) as u8).collect();
        let mut s = sender(&data, 512);
        s.on_subscribe(NodeId(2));
        let mut rxs = vec![receiver(&s, NodeId(2))];
        run_round(&mut s, &mut rxs, |_, _| false);
        assert!(rxs[0].is_complete());
        assert!(run_completion(&mut s, &rxs));
        assert_eq!(rxs.remove(0).into_data().as_ref(), data.as_slice());
        assert_eq!(s.stats().completed, 1);
        assert_eq!(s.stats().rounds, 1);
    }

    #[test]
    fn lossy_transfer_iterates_until_done() {
        let data: Vec<u8> = (0..20_000u32).map(|i| (i % 255) as u8).collect();
        let mut s = sender(&data, 256);
        s.on_subscribe(NodeId(2));
        s.on_subscribe(NodeId(3));
        let mut rxs = vec![receiver(&s, NodeId(2)), receiver(&s, NodeId(3))];
        // Deterministic pseudo-loss: receiver 0 drops every 7th chunk on the
        // first pass, receiver 1 every 5th.
        let mut first_pass = true;
        let mut rounds = 0;
        loop {
            let fp = first_pass;
            run_round(&mut s, &mut rxs, |ri, idx| fp && idx % (7 - 2 * ri as u32) == 0);
            first_pass = false;
            rounds += 1;
            if run_completion(&mut s, &rxs) {
                break;
            }
            assert!(rounds < 10, "must converge");
        }
        for rx in rxs {
            assert!(rx.is_complete());
            assert_eq!(rx.into_data().as_ref(), data.as_slice());
        }
        assert!(s.stats().rounds >= 2);
        // Repair rounds resend only missing chunks: strictly fewer chunk
        // sends than two full passes.
        assert!(s.stats().chunks_sent < 2 * u64::from(s.total_chunks()) + 40);
    }

    #[test]
    fn late_join_collects_tail_then_nacks_head() {
        let data = vec![7u8; 4096];
        let mut s = sender(&data, 256); // 16 chunks
        s.on_subscribe(NodeId(2));
        let mut early = receiver(&s, NodeId(2));
        // First half of the round goes out before the late joiner appears.
        let half = s.next_chunks(8);
        for c in &half {
            if let Message::FileChunk { revision, index, payload, .. } = c {
                early.on_chunk(*revision, *index, payload);
            }
        }
        // Late joiner subscribes mid-transfer and hears only the tail.
        s.on_subscribe(NodeId(3));
        let mut late = receiver(&s, NodeId(3));
        let tail = s.next_chunks(64);
        for c in &tail {
            if let Message::FileChunk { revision, index, payload, .. } = c {
                early.on_chunk(*revision, *index, payload);
                late.on_chunk(*revision, *index, payload);
            }
        }
        assert!(early.is_complete());
        assert!(!late.is_complete());
        // Completion: late NACKs the head it missed.
        let q = s.query();
        let Message::FileQuery { revision, .. } = q else { panic!() };
        match early.on_query(revision) {
            Some(Message::FileAck { subscriber, revision, .. }) => s.on_ack(subscriber, revision),
            other => panic!("{other:?}"),
        }
        match late.on_query(revision) {
            Some(Message::FileNack { subscriber, revision, runs, .. }) => {
                assert_eq!(runs, vec![(0, 8)]);
                s.on_nack(subscriber, revision, &runs).unwrap();
            }
            other => panic!("{other:?}"),
        }
        // Repair round serves only the head.
        let repair = s.next_chunks(64);
        assert_eq!(repair.len(), 8);
        for c in &repair {
            if let Message::FileChunk { revision, index, payload, .. } = c {
                late.on_chunk(*revision, *index, payload);
            }
        }
        assert!(late.is_complete());
        assert_eq!(late.into_data().as_ref(), data.as_slice());
    }

    #[test]
    fn revision_bump_restarts_receivers() {
        let mut s = sender(&[1u8; 1000], 100);
        s.on_subscribe(NodeId(2));
        let mut rx = receiver(&s, NodeId(2));
        // Deliver a few chunks of rev 1.
        for c in s.next_chunks(3) {
            if let Message::FileChunk { revision, index, payload, .. } = c {
                rx.on_chunk(revision, index, &payload);
            }
        }
        let new_announce = s.bump_revision(Bytes::from(vec![2u8; 500])).unwrap();
        assert_eq!(s.revision(), 2);
        assert_eq!(rx.on_announce(&new_announce).unwrap(), AnnounceOutcome::Restarted);
        assert_eq!(rx.revision(), 2);
        assert_eq!(rx.progress(), (0, 5));
        // Old-revision chunks are now ignored.
        assert!(!rx.on_chunk(1, 0, &[1u8; 100]));
        // Full new round completes.
        let mut rxs = vec![rx];
        run_round(&mut s, &mut rxs, |_, _| false);
        assert!(rxs[0].is_complete());
        assert_eq!(rxs[0].progress(), (5, 5));
    }

    #[test]
    fn finish_current_policy_defers_new_revision() {
        let mut s = sender(&[1u8; 1000], 100);
        s.on_subscribe(NodeId(2));
        let (mut rx, _) =
            FileReceiver::from_announce(&s.announce(), NodeId(2), RevisionPolicy::FinishCurrent)
                .unwrap();
        let ann2 = s.bump_revision(Bytes::from(vec![2u8; 100])).unwrap();
        assert_eq!(rx.on_announce(&ann2).unwrap(), AnnounceOutcome::DeferredNewRevision);
        assert_eq!(rx.revision(), 1);
        assert!(rx.pending_revision().is_some());
    }

    #[test]
    fn unresponsive_subscriber_is_evicted() {
        let mut s = sender(&[0u8; 100], 10);
        s.on_subscribe(NodeId(9));
        for _ in 0..=8 {
            let _ = s.next_chunks(usize::MAX);
            let _ = s.query();
        }
        assert!(s.is_complete(), "ghost subscriber evicted after stale rounds");
        assert_eq!(s.stats().evicted, 1);
    }

    #[test]
    fn nack_from_unknown_node_adopts_it() {
        let mut s = sender(&[0u8; 100], 10);
        s.on_subscribe(NodeId(1));
        let _ = s.next_chunks(usize::MAX);
        s.on_nack(NodeId(42), 1, &[(0, 10)]).unwrap();
        assert_eq!(s.subscriber_count(), 2);
        assert!(s.has_pending_chunks());
    }

    #[test]
    fn bad_nack_runs_rejected() {
        let mut s = sender(&[0u8; 100], 10); // 10 chunks
        s.on_subscribe(NodeId(1));
        assert!(s.on_nack(NodeId(1), 1, &[(5, 6)]).is_err(), "end beyond range");
        assert!(s.on_nack(NodeId(1), 1, &[(0, 0)]).is_err(), "empty run");
        assert!(s.on_nack(NodeId(1), 1, &[(u32::MAX, 2)]).is_err(), "overflow");
        // Stale revision NACKs are ignored, not errors.
        assert!(s.on_nack(NodeId(1), 0, &[(0, 10)]).is_ok());
    }

    #[test]
    fn chunk_length_mismatch_is_dropped() {
        let s = sender(&[0u8; 100], 10);
        let mut rx = receiver(&s, NodeId(2));
        assert!(!rx.on_chunk(1, 0, &[0u8; 5]), "short chunk ignored");
        assert_eq!(rx.progress().0, 0);
        // Correct length accepted.
        rx.on_chunk(1, 0, &[0u8; 10]);
        assert_eq!(rx.progress().0, 1);
    }

    #[test]
    fn last_chunk_may_be_short() {
        let data = vec![9u8; 1050]; // 2 chunks of 1024: second is 26 bytes
        let mut s = sender(&data, 1024);
        s.on_subscribe(NodeId(2));
        let mut rxs = vec![receiver(&s, NodeId(2))];
        run_round(&mut s, &mut rxs, |_, _| false);
        assert!(rxs[0].is_complete());
        assert_eq!(rxs.remove(0).into_data().as_ref(), data.as_slice());
    }

    #[test]
    fn empty_file_transfers() {
        let mut s = sender(&[], 1024);
        s.on_subscribe(NodeId(2));
        let mut rxs = vec![receiver(&s, NodeId(2))];
        run_round(&mut s, &mut rxs, |_, _| false);
        assert!(rxs[0].is_complete());
        assert!(run_completion(&mut s, &rxs));
    }
}
