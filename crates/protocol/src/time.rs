//! Explicit time representation for the protocol state machines.
//!
//! Protocol code never reads a clock; every entry point takes `now:
//! Micros`. Under the network simulator `now` is virtual time, which makes
//! retransmission, validity and heartbeat behaviour fully deterministic and
//! property-testable; under the real-time driver it is microseconds since
//! container start.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in time, in microseconds since an arbitrary epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Micros(pub u64);

/// A span of time, in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProtoDuration(pub u64);

impl Micros {
    /// The zero epoch.
    pub const ZERO: Micros = Micros(0);

    /// Constructs from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        Micros(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        Micros(s * 1_000_000)
    }

    /// Raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    pub fn saturating_since(self, earlier: Micros) -> ProtoDuration {
        ProtoDuration(self.0.saturating_sub(earlier.0))
    }

    /// Millisecond representation (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }
}

impl ProtoDuration {
    /// The zero duration.
    pub const ZERO: ProtoDuration = ProtoDuration(0);

    /// Constructs from raw microseconds.
    pub fn from_micros(us: u64) -> Self {
        ProtoDuration(us)
    }

    /// Constructs from whole milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        ProtoDuration(ms * 1_000)
    }

    /// Constructs from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        ProtoDuration(s * 1_000_000)
    }

    /// Raw microsecond count.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Millisecond representation (truncating).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration scaled by an integer factor, saturating.
    pub fn saturating_mul(self, factor: u64) -> ProtoDuration {
        ProtoDuration(self.0.saturating_mul(factor))
    }
}

impl Add<ProtoDuration> for Micros {
    type Output = Micros;

    fn add(self, rhs: ProtoDuration) -> Micros {
        Micros(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<ProtoDuration> for Micros {
    fn add_assign(&mut self, rhs: ProtoDuration) {
        *self = *self + rhs;
    }
}

impl Sub<Micros> for Micros {
    type Output = ProtoDuration;

    fn sub(self, rhs: Micros) -> ProtoDuration {
        ProtoDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for ProtoDuration {
    type Output = ProtoDuration;

    fn add(self, rhs: ProtoDuration) -> ProtoDuration {
        ProtoDuration(self.0.saturating_add(rhs.0))
    }
}

impl From<std::time::Duration> for ProtoDuration {
    fn from(d: std::time::Duration) -> Self {
        ProtoDuration(d.as_micros().min(u128::from(u64::MAX)) as u64)
    }
}

impl From<ProtoDuration> for std::time::Duration {
    fn from(d: ProtoDuration) -> Self {
        std::time::Duration::from_micros(d.0)
    }
}

impl fmt::Display for Micros {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.6}s", self.0 as f64 / 1e6)
    }
}

impl fmt::Display for ProtoDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}µs", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_saturates() {
        let t = Micros(10);
        assert_eq!(t - Micros(50), ProtoDuration::ZERO);
        assert_eq!(Micros(u64::MAX) + ProtoDuration(5), Micros(u64::MAX));
        assert_eq!(ProtoDuration(u64::MAX).saturating_mul(3), ProtoDuration(u64::MAX));
    }

    #[test]
    fn conversions() {
        assert_eq!(Micros::from_millis(2).as_micros(), 2_000);
        assert_eq!(Micros::from_secs(1).as_millis(), 1_000);
        assert_eq!(ProtoDuration::from_secs(2).as_secs_f64(), 2.0);
        let std_d: std::time::Duration = ProtoDuration::from_millis(5).into();
        assert_eq!(std_d.as_micros(), 5_000);
        assert_eq!(ProtoDuration::from(std::time::Duration::from_micros(7)).0, 7);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(ProtoDuration(500).to_string(), "500µs");
        assert_eq!(ProtoDuration(2_500).to_string(), "2.500ms");
        assert_eq!(ProtoDuration(1_500_000).to_string(), "1.500s");
        assert_eq!(Micros(1_000_000).to_string(), "t+1.000000s");
    }

    #[test]
    fn saturating_since() {
        assert_eq!(Micros(100).saturating_since(Micros(40)).0, 60);
        assert_eq!(Micros(40).saturating_since(Micros(100)).0, 0);
    }
}
