//! Interleaved systematic XOR erasure code over shard groups.
//!
//! A *group* is up to `k` variable-length data shards protected by `r`
//! parity lanes; data shard `i` belongs to lane `i % r`, and a lane's
//! parity is the XOR of its members' *virtual shards* (a 2-byte
//! little-endian length prefix followed by the data, zero-padded to the
//! lane's longest member). One erasure per lane is recoverable; because
//! the code is systematic, intact data shards are usable immediately and
//! the whole layer adds zero latency on the no-loss path.
//!
//! Everything here is allocation-free after construction, in the spirit
//! of labrador-ldpc: both encoder and decoder XOR into lane buffers
//! preallocated for the link's maximum shard size, and recovery hands the
//! caller a borrowed slice of the lane accumulator.

/// Length of the virtual-shard length prefix.
const LEN_PREFIX: usize = 2;

/// Most data shards a group may carry (the `received` bitmaps are `u64`).
pub const MAX_GROUP_DATA: u8 = 64;

/// Parity shard indices carry this bit; the low bits are the lane number.
pub const PARITY_INDEX_BIT: u8 = 0x80;

fn xor_into(acc: &mut [u8], src: &[u8]) {
    for (a, b) in acc.iter_mut().zip(src.iter()) {
        *a ^= *b;
    }
}

/// One XOR lane: an accumulator plus the length of its longest member.
#[derive(Debug)]
struct Lane {
    acc: Vec<u8>,
    len: usize,
    members: u8,
}

impl Lane {
    fn with_capacity(cap: usize) -> Self {
        Lane { acc: vec![0; cap], len: 0, members: 0 }
    }

    fn reset(&mut self) {
        self.acc[..self.len].fill(0);
        self.len = 0;
        self.members = 0;
    }

    /// XORs the virtual shard `[len_le16 | data]` into the accumulator.
    /// Returns `false` (lane untouched) when the shard does not fit.
    fn absorb_virtual(&mut self, data: &[u8]) -> bool {
        let vlen = LEN_PREFIX + data.len();
        if vlen > self.acc.len() || data.len() > u16::MAX as usize {
            return false;
        }
        let len_le = (data.len() as u16).to_le_bytes();
        self.acc[0] ^= len_le[0];
        self.acc[1] ^= len_le[1];
        xor_into(&mut self.acc[LEN_PREFIX..vlen], data);
        self.len = self.len.max(vlen);
        self.members = self.members.saturating_add(1);
        true
    }

    /// XORs a raw parity payload into the accumulator.
    fn absorb_raw(&mut self, payload: &[u8]) -> bool {
        if payload.len() > self.acc.len() {
            return false;
        }
        xor_into(&mut self.acc[..payload.len()], payload);
        self.len = self.len.max(payload.len());
        true
    }

    /// Interprets the accumulator as one reconstructed virtual shard.
    fn as_recovered(&self) -> Option<&[u8]> {
        if self.len < LEN_PREFIX {
            return None;
        }
        let dlen = usize::from(u16::from_le_bytes([self.acc[0], self.acc[1]]));
        if LEN_PREFIX + dlen > self.len {
            return None; // inconsistent: some member never reached this lane
        }
        Some(&self.acc[LEN_PREFIX..LEN_PREFIX + dlen])
    }
}

/// Builds parity for one group at a time, reusing its lane buffers across
/// groups.
#[derive(Debug)]
pub struct GroupEncoder {
    lanes: Vec<Lane>,
    max_shard: usize,
    k: u8,
    r: u8,
    pushed: u8,
}

impl GroupEncoder {
    /// An encoder able to serve geometries up to `max_r` lanes and shards
    /// up to `max_shard` bytes. All buffers are allocated here, once.
    pub fn new(max_shard: usize, max_r: u8) -> Self {
        let cap = max_shard + LEN_PREFIX;
        GroupEncoder {
            lanes: (0..max_r.max(1)).map(|_| Lane::with_capacity(cap)).collect(),
            max_shard,
            k: 0,
            r: 0,
            pushed: 0,
        }
    }

    /// Starts a fresh group with geometry `(k, r)`. Clamps to the
    /// encoder's preallocated capacity and the bitmap-imposed
    /// [`MAX_GROUP_DATA`].
    pub fn begin(&mut self, k: u8, r: u8) {
        for lane in &mut self.lanes {
            lane.reset();
        }
        self.k = k.min(MAX_GROUP_DATA);
        self.r = r.min(self.lanes.len() as u8).min(self.k.max(1));
        self.pushed = 0;
    }

    /// Largest shard this encoder can absorb.
    pub fn max_shard(&self) -> usize {
        self.max_shard
    }

    /// Data shards absorbed into the current group.
    pub fn pushed(&self) -> u8 {
        self.pushed
    }

    /// `true` once the group holds `k` data shards and parity is due.
    pub fn is_full(&self) -> bool {
        self.r > 0 && self.pushed >= self.k
    }

    /// Absorbs the next data shard and returns its index within the
    /// group, or `None` when the shard cannot be coded (group full,
    /// geometry off, or shard larger than the preallocated lanes) — the
    /// caller then sends the message bare, outside any group.
    pub fn push(&mut self, data: &[u8]) -> Option<u8> {
        if self.r == 0 || self.pushed >= self.k || data.len() > self.max_shard {
            return None;
        }
        let index = self.pushed;
        let lane = self.lanes.get_mut(usize::from(index % self.r))?;
        if !lane.absorb_virtual(data) {
            return None;
        }
        self.pushed += 1;
        Some(index)
    }

    /// Parity lanes the current group needs: one per lane with members.
    pub fn parity_lanes(&self) -> u8 {
        self.r.min(self.pushed)
    }

    /// Borrows the parity payload of `lane` (valid after the group's data
    /// shards are pushed, until the next [`GroupEncoder::begin`]).
    pub fn parity(&self, lane: u8) -> &[u8] {
        match self.lanes.get(usize::from(lane)) {
            Some(l) => &l.acc[..l.len],
            None => &[],
        }
    }
}

/// Outcome of feeding one shard to a [`GroupDecoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Absorb {
    /// First sight of this shard; it was accumulated.
    Fresh,
    /// Already seen (duplicate delivery); ignored.
    Duplicate,
    /// Could not be accumulated (oversize or malformed geometry).
    Rejected,
}

/// Reconstructs the erased shards of one group from whatever arrives.
///
/// The decoder never buffers whole shards: each lane keeps a single XOR
/// accumulator, and when exactly one data member of a lane is missing
/// while its parity has arrived, the accumulator *is* the missing
/// virtual shard.
#[derive(Debug)]
pub struct GroupDecoder {
    /// Group id this decoder currently serves.
    pub group: u64,
    lanes: Vec<Lane>,
    /// Bitmap of data indices seen (wire arrivals, not recoveries).
    received: u64,
    /// Bitmap of data indices recovered via parity.
    recovered: u64,
    /// Bitmap of parity lanes seen.
    parity_seen: u8,
    /// Final data-shard count, learned from parity headers; `None` until
    /// a parity shard arrives (data headers carry the geometry *ceiling*).
    k_final: Option<u8>,
    /// Highest data index seen plus one (fallback population estimate).
    k_floor: u8,
    r: u8,
    in_use: bool,
}

impl GroupDecoder {
    /// A decoder with lanes for up to `max_r` parity lanes of
    /// `max_shard`-byte shards. Allocated once; reused via
    /// [`GroupDecoder::reset`].
    pub fn new(max_shard: usize, max_r: u8) -> Self {
        let cap = max_shard + LEN_PREFIX;
        GroupDecoder {
            group: 0,
            lanes: (0..max_r.max(1)).map(|_| Lane::with_capacity(cap)).collect(),
            received: 0,
            recovered: 0,
            parity_seen: 0,
            k_final: None,
            k_floor: 0,
            r: 0,
            in_use: false,
        }
    }

    /// Rebinds the decoder to a new group.
    pub fn reset(&mut self, group: u64) {
        for lane in &mut self.lanes {
            lane.reset();
        }
        self.group = group;
        self.received = 0;
        self.recovered = 0;
        self.parity_seen = 0;
        self.k_final = None;
        self.k_floor = 0;
        self.r = 0;
        self.in_use = true;
    }

    /// `true` while the decoder is bound to a live group.
    pub fn in_use(&self) -> bool {
        self.in_use
    }

    /// Marks the decoder free for reuse.
    pub fn retire(&mut self) {
        self.in_use = false;
    }

    /// Wire shards seen for this group (data + parity).
    pub fn received_count(&self) -> u32 {
        self.received.count_ones() + self.parity_seen.count_ones()
    }

    /// Shards the group was sent with, as far as this decoder knows:
    /// exact once parity told us `k`, a floor estimate before that.
    pub fn expected_count(&self) -> u32 {
        match self.k_final {
            Some(k) => u32::from(k) + u32::from(self.r.min(k)),
            None => u32::from(self.k_floor),
        }
    }

    /// Feeds a data shard (`index < `[`PARITY_INDEX_BIT`]).
    pub fn on_data(&mut self, index: u8, r: u8, payload: &[u8]) -> Absorb {
        if index >= MAX_GROUP_DATA || r == 0 {
            return Absorb::Rejected;
        }
        let bit = 1u64 << index;
        if self.received & bit != 0 || self.recovered & bit != 0 {
            return Absorb::Duplicate;
        }
        if self.r == 0 {
            self.r = r.min(self.lanes.len() as u8);
        }
        let Some(lane) = self.lanes.get_mut(usize::from(index % self.r.max(1))) else {
            return Absorb::Rejected;
        };
        if !lane.absorb_virtual(payload) {
            return Absorb::Rejected;
        }
        self.received |= bit;
        self.k_floor = self.k_floor.max(index + 1);
        Absorb::Fresh
    }

    /// Feeds a parity shard for `lane`, carrying the group's final data
    /// count `k` in its header.
    pub fn on_parity(&mut self, lane: u8, k: u8, r: u8, payload: &[u8]) -> Absorb {
        if r == 0 || lane >= 8 || lane >= r {
            return Absorb::Rejected;
        }
        let bit = 1u8 << lane;
        if self.parity_seen & bit != 0 {
            return Absorb::Duplicate;
        }
        if self.r == 0 {
            self.r = r.min(self.lanes.len() as u8);
        }
        let Some(l) = self.lanes.get_mut(usize::from(lane)) else {
            return Absorb::Rejected;
        };
        if !l.absorb_raw(payload) {
            return Absorb::Rejected;
        }
        self.parity_seen |= bit;
        self.k_final = Some(k.min(MAX_GROUP_DATA));
        self.k_floor = self.k_floor.max(k.min(MAX_GROUP_DATA));
        Absorb::Fresh
    }

    /// Attempts one recovery: finds a lane whose parity arrived and whose
    /// data members are all present except one, and reconstructs that
    /// member. Returns `(index, recovered_data)`; call repeatedly until
    /// `None` (a recovery can unblock nothing further here because lanes
    /// are independent, but the loop shape keeps callers simple).
    pub fn recover(&mut self) -> Option<(u8, &[u8])> {
        let k = self.k_final?;
        let r = self.r;
        if r == 0 {
            return None;
        }
        let mut found: Option<(u8, u8)> = None; // (missing index, lane)
        for lane in 0..r.min(8) {
            if self.parity_seen & (1 << lane) == 0 {
                continue;
            }
            let mut missing: Option<u8> = None;
            let mut missing_count = 0u8;
            let mut i = lane;
            while i < k {
                let bit = 1u64 << i;
                if self.received & bit == 0 && self.recovered & bit == 0 {
                    missing_count += 1;
                    missing = Some(i);
                }
                i = match i.checked_add(r) {
                    Some(n) => n,
                    None => break,
                };
            }
            if missing_count == 1 {
                if let Some(m) = missing {
                    found = Some((m, lane));
                    break;
                }
            }
        }
        let (index, lane) = found?;
        self.recovered |= 1u64 << index;
        let recovered = self.lanes.get(usize::from(lane)).and_then(|l| l.as_recovered())?;
        Some((index, recovered))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_group(enc: &mut GroupEncoder, shards: &[&[u8]], k: u8, r: u8) -> Vec<(u8, Vec<u8>)> {
        enc.begin(k, r);
        let mut out = Vec::new();
        for s in shards {
            let idx = enc.push(s).expect("shard fits");
            out.push((idx, s.to_vec()));
        }
        for lane in 0..enc.parity_lanes() {
            out.push((PARITY_INDEX_BIT | lane, enc.parity(lane).to_vec()));
        }
        out
    }

    fn decode_with_erasures(
        shards: &[(u8, Vec<u8>)],
        erased: &[u8],
        k_actual: u8,
        r: u8,
    ) -> Vec<(u8, Vec<u8>)> {
        let mut dec = GroupDecoder::new(64, r);
        dec.reset(1);
        for (idx, payload) in shards {
            if erased.contains(idx) {
                continue;
            }
            if idx & PARITY_INDEX_BIT != 0 {
                assert_eq!(
                    dec.on_parity(idx & !PARITY_INDEX_BIT, k_actual, r, payload),
                    Absorb::Fresh
                );
            } else {
                assert_eq!(dec.on_data(*idx, r, payload), Absorb::Fresh);
            }
        }
        let mut recovered = Vec::new();
        while let Some((idx, data)) = dec.recover() {
            recovered.push((idx, data.to_vec()));
        }
        recovered
    }

    #[test]
    fn single_erasure_recovers_exactly() {
        let mut enc = GroupEncoder::new(64, 1);
        let shards = encode_group(&mut enc, &[b"alpha", b"bee", b"gamma-longer", b"d"], 4, 1);
        for victim in 0..4u8 {
            let rec = decode_with_erasures(&shards, &[victim], 4, 1);
            assert_eq!(rec, vec![(victim, shards[victim as usize].1.clone())]);
        }
    }

    #[test]
    fn two_lanes_recover_one_erasure_each() {
        let mut enc = GroupEncoder::new(64, 2);
        let shards = encode_group(&mut enc, &[b"q0", b"q1-long", b"q2", b"q3x"], 4, 2);
        // Indices 0 and 1 live in different lanes (i % 2): both recoverable.
        let rec = decode_with_erasures(&shards, &[0, 1], 4, 2);
        let mut rec = rec;
        rec.sort();
        assert_eq!(rec, vec![(0, b"q0".to_vec()), (1, b"q1-long".to_vec())]);
    }

    #[test]
    fn two_erasures_in_one_lane_are_unrecoverable() {
        let mut enc = GroupEncoder::new(64, 1);
        let shards = encode_group(&mut enc, &[b"a", b"b", b"c"], 4, 1);
        let rec = decode_with_erasures(&shards, &[0, 1], 3, 1);
        assert!(rec.is_empty(), "two losses in a single XOR lane cannot be rebuilt");
    }

    #[test]
    fn lost_parity_means_no_recovery_but_no_harm() {
        let mut enc = GroupEncoder::new(64, 1);
        let shards = encode_group(&mut enc, &[b"a", b"b"], 2, 1);
        let parity_idx = PARITY_INDEX_BIT;
        let rec = decode_with_erasures(&shards, &[parity_idx], 2, 1);
        assert!(rec.is_empty());
    }

    #[test]
    fn partial_group_flush_recovers() {
        // Geometry ceiling k=8, but only 3 shards pushed before flush;
        // parity carries the actual count.
        let mut enc = GroupEncoder::new(64, 1);
        enc.begin(8, 1);
        for s in [b"x1".as_slice(), b"x2", b"x3"] {
            enc.push(s).expect("fits");
        }
        assert!(!enc.is_full());
        let mut shards: Vec<(u8, Vec<u8>)> =
            vec![(0, b"x1".to_vec()), (1, b"x2".to_vec()), (2, b"x3".to_vec())];
        for lane in 0..enc.parity_lanes() {
            shards.push((PARITY_INDEX_BIT | lane, enc.parity(lane).to_vec()));
        }
        let rec = decode_with_erasures(&shards, &[1], 3, 1);
        assert_eq!(rec, vec![(1, b"x2".to_vec())]);
    }

    #[test]
    fn duplicates_do_not_corrupt_the_accumulator() {
        let mut enc = GroupEncoder::new(64, 1);
        let shards = encode_group(&mut enc, &[b"dup", b"keep"], 2, 1);
        let mut dec = GroupDecoder::new(64, 1);
        dec.reset(9);
        assert_eq!(dec.on_data(0, 1, &shards[0].1), Absorb::Fresh);
        assert_eq!(dec.on_data(0, 1, &shards[0].1), Absorb::Duplicate);
        assert_eq!(dec.on_parity(0, 2, 1, &shards[2].1), Absorb::Fresh);
        let (idx, data) = dec.recover().expect("index 1 recoverable");
        assert_eq!((idx, data), (1, b"keep".as_slice()));
        assert!(dec.recover().is_none());
    }

    #[test]
    fn oversize_shards_are_rejected_not_truncated() {
        let mut enc = GroupEncoder::new(4, 1);
        enc.begin(4, 1);
        assert!(enc.push(b"fits").is_some());
        assert!(enc.push(b"too large").is_none());
        let mut dec = GroupDecoder::new(4, 1);
        dec.reset(1);
        assert_eq!(dec.on_data(1, 1, b"way too large"), Absorb::Rejected);
    }

    #[test]
    fn variable_lengths_roundtrip_through_recovery() {
        let mut enc = GroupEncoder::new(128, 2);
        let payloads: Vec<Vec<u8>> =
            (0..6u8).map(|i| (0..=i).map(|j| i.wrapping_mul(17) ^ j).collect()).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
        let shards = encode_group(&mut enc, &refs, 6, 2);
        for victim in 0..6u8 {
            let rec = decode_with_erasures(&shards, &[victim], 6, 2);
            assert_eq!(rec, vec![(victim, payloads[victim as usize].clone())]);
        }
    }

    #[test]
    fn accounting_tracks_expected_and_received() {
        let mut dec = GroupDecoder::new(64, 1);
        dec.reset(3);
        assert_eq!(dec.expected_count(), 0);
        dec.on_data(0, 1, b"a");
        dec.on_data(2, 1, b"c");
        assert_eq!(dec.expected_count(), 3, "floor: highest index + 1");
        dec.on_parity(0, 3, 1, b"parity-ish");
        assert_eq!(dec.expected_count(), 4, "exact: k + parity lanes");
        assert_eq!(dec.received_count(), 3);
    }
}
