//! Loss estimation and the adaptive code-rate controller.
//!
//! The receiver measures shard loss per retired group (expected vs
//! actually arrived — recoveries do not count as arrivals) and folds it
//! into a fixed-point EWMA. The estimate rides back to the sender
//! piggybacked on `RelAck`, where the controller maps it onto the
//! [`FecRate`] table with hysteresis: tighten immediately when loss
//! crosses a threshold, relax only after a sustained calm streak. Both
//! pieces are pure integer state machines — no clocks, no floats on the
//! estimate path — so the whole loop is deterministic under the sim.

use super::rate::FecRate;

/// EWMA smoothing shift: `est += (obs - est) >> 3` (α = 1/8).
const EWMA_SHIFT: u32 = 3;

/// Exponentially weighted shard-loss estimate in permille.
#[derive(Debug, Clone, Copy, Default)]
pub struct LossEstimator {
    /// Scaled estimate (permille << EWMA_SHIFT) for precision.
    scaled: u32,
    groups: u64,
}

impl LossEstimator {
    /// A fresh estimator reading 0‰.
    pub fn new() -> Self {
        LossEstimator::default()
    }

    /// Folds one retired group into the estimate.
    pub fn observe_group(&mut self, received: u32, expected: u32) {
        if expected == 0 {
            return;
        }
        let lost = expected.saturating_sub(received);
        let obs_permille = (lost * 1000 / expected).min(1000);
        if self.groups == 0 {
            self.scaled = obs_permille << EWMA_SHIFT;
        } else {
            let est = self.scaled >> EWMA_SHIFT;
            if obs_permille >= est {
                self.scaled += (obs_permille - est).min(1000);
            } else {
                self.scaled -= (est - obs_permille).min(self.scaled);
            }
        }
        self.groups += 1;
    }

    /// Current estimate in permille (0–1000).
    pub fn loss_permille(&self) -> u16 {
        ((self.scaled >> EWMA_SHIFT).min(1000)) as u16
    }

    /// Groups folded in so far.
    pub fn groups_observed(&self) -> u64 {
        self.groups
    }
}

/// Loss thresholds (permille) above which each rate engages, weakest
/// rate first: `< 20‰ ⇒ Light`, `< 80‰ ⇒ Medium`, `< 180‰ ⇒ Strong`,
/// else `Max`.
const TIGHTEN_AT: &[(u16, FecRate)] =
    &[(180, FecRate::Max), (80, FecRate::Strong), (20, FecRate::Medium)];

/// Consecutive below-threshold updates required before stepping one rate
/// down (slow relax guards against loss/rate oscillation).
const RELAX_AFTER: u32 = 8;

/// Maps the loss estimate onto the rate table with hysteresis.
#[derive(Debug, Clone, Copy)]
pub struct RateController {
    cap: FecRate,
    current: FecRate,
    calm_streak: u32,
}

impl RateController {
    /// A controller bounded by the negotiated `cap`, starting at the
    /// lightest active rate.
    pub fn new(cap: FecRate) -> Self {
        let floor = if cap == FecRate::Off { FecRate::Off } else { FecRate::Light };
        RateController { cap, current: floor, calm_streak: 0 }
    }

    /// The rate currently in force.
    pub fn rate(&self) -> FecRate {
        self.current
    }

    /// The negotiated ceiling.
    pub fn cap(&self) -> FecRate {
        self.cap
    }

    /// What the raw threshold table asks for at `loss_permille`, before
    /// hysteresis or capping.
    pub fn target_for(loss_permille: u16) -> FecRate {
        for &(threshold, rate) in TIGHTEN_AT {
            if loss_permille >= threshold {
                return rate;
            }
        }
        FecRate::Light
    }

    /// Feeds a loss report; returns the (possibly updated) rate.
    ///
    /// Tightening is immediate — by the time the estimate crosses a
    /// threshold the link is already bleeding retransmissions. Relaxing
    /// steps one rate at a time after `RELAX_AFTER` consecutive calm
    /// reports, so a brief lull inside a loss ramp does not whipsaw the
    /// geometry.
    pub fn update(&mut self, loss_permille: u16) -> FecRate {
        if self.cap == FecRate::Off {
            return FecRate::Off;
        }
        let target = Self::target_for(loss_permille).min(self.cap);
        if target > self.current {
            self.current = target;
            self.calm_streak = 0;
        } else if target < self.current {
            self.calm_streak += 1;
            if self.calm_streak >= RELAX_AFTER {
                self.current = self.current.weaker().max(target);
                self.calm_streak = 0;
            }
        } else {
            self.calm_streak = 0;
        }
        self.current
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_starts_at_first_observation() {
        let mut e = LossEstimator::new();
        assert_eq!(e.loss_permille(), 0);
        e.observe_group(8, 10); // 20% loss
        assert_eq!(e.loss_permille(), 200);
    }

    #[test]
    fn estimator_converges_toward_sustained_loss() {
        let mut e = LossEstimator::new();
        for _ in 0..64 {
            e.observe_group(3, 4); // 250‰
        }
        let est = e.loss_permille();
        assert!((240..=260).contains(&est), "est {est}‰ should settle near 250‰");
        for _ in 0..64 {
            e.observe_group(4, 4);
        }
        assert!(e.loss_permille() < 20, "calm traffic must pull the estimate back down");
    }

    #[test]
    fn estimator_saturates_sanely() {
        let mut e = LossEstimator::new();
        e.observe_group(0, 4);
        assert_eq!(e.loss_permille(), 1000);
        e.observe_group(10, 4); // more received than expected: clamp at 0 lost
        assert!(e.loss_permille() < 1000);
    }

    #[test]
    fn controller_tightens_immediately() {
        let mut c = RateController::new(FecRate::Max);
        assert_eq!(c.rate(), FecRate::Light);
        assert_eq!(c.update(100), FecRate::Strong);
        assert_eq!(c.update(300), FecRate::Max);
    }

    #[test]
    fn controller_relaxes_slowly_one_step_at_a_time() {
        let mut c = RateController::new(FecRate::Max);
        c.update(300);
        assert_eq!(c.rate(), FecRate::Max);
        for _ in 0..7 {
            assert_eq!(c.update(0), FecRate::Max, "calm streak not yet long enough");
        }
        assert_eq!(c.update(0), FecRate::Strong, "8th calm report steps down once");
        for _ in 0..7 {
            c.update(0);
        }
        assert_eq!(c.update(0), FecRate::Medium);
    }

    #[test]
    fn relax_streak_resets_on_new_loss() {
        let mut c = RateController::new(FecRate::Max);
        c.update(300);
        for _ in 0..6 {
            c.update(0);
        }
        c.update(300); // loss returns: streak dies
        for _ in 0..7 {
            assert_eq!(c.update(0), FecRate::Max);
        }
    }

    #[test]
    fn cap_bounds_the_controller() {
        let mut c = RateController::new(FecRate::Medium);
        assert_eq!(c.update(999), FecRate::Medium);
        let mut off = RateController::new(FecRate::Off);
        assert_eq!(off.update(999), FecRate::Off);
    }

    #[test]
    fn threshold_table_matches_docs() {
        assert_eq!(RateController::target_for(0), FecRate::Light);
        assert_eq!(RateController::target_for(19), FecRate::Light);
        assert_eq!(RateController::target_for(20), FecRate::Medium);
        assert_eq!(RateController::target_for(80), FecRate::Strong);
        assert_eq!(RateController::target_for(180), FecRate::Max);
        assert_eq!(RateController::target_for(1000), FecRate::Max);
    }
}
