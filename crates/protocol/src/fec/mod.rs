//! Forward error correction below the ARQ layer.
//!
//! The reliable channel's weakness on a degraded radio link is that every
//! erasure costs a full retransmission round-trip: the ARQ sender only
//! learns about a hole after an RTO or a SACK gap, which is exactly the
//! regime the paper's avionics workload cannot afford. This module adds a
//! transparent repair layer *underneath* ARQ: outgoing `RelData`
//! envelopes are wrapped as data shards of an interleaved systematic XOR
//! group ([`block`]), parity shards ride along at a code rate chosen from
//! a small table ([`rate`]), and the receiver rebuilds erased shards
//! locally — no round-trip — while an observed-loss estimator drives the
//! rate up and down as the link degrades and heals ([`adapt`]).
//!
//! Layering (wire order):
//!
//! ```text
//!   application payload
//!     └─ RelData { seq }              (ARQ: ordering + backstop retransmit)
//!          └─ FecShard { group, idx } (this module: RTT-free erasure repair)
//!               └─ Frame + CRC32      (framing, corruption detection)
//! ```
//!
//! Because the code is systematic, intact shards decode with zero added
//! latency; FEC only ever *adds* recovery opportunities, so every ARQ
//! invariant (exactly-once, in-order, RTO backstop) is preserved even if
//! the whole FEC layer is starved or confused.

pub mod adapt;
pub mod block;
pub mod rate;

use bytes::Bytes;

use crate::messages::Message;

pub use adapt::{LossEstimator, RateController};
pub use block::{Absorb, GroupDecoder, GroupEncoder, MAX_GROUP_DATA, PARITY_INDEX_BIT};
pub use rate::FecRate;

/// Largest inner message (tagged encoding) that will be coded; anything
/// bigger travels bare outside any group. Sized so a shard plus its
/// headers still fits a default 1500-byte MTU frame.
pub const MAX_SHARD_LEN: usize = 1200;

/// Group decoders kept live per link; groups older than the ring are
/// retired (and their losses accounted) as new groups arrive.
pub const DECODER_RING: usize = 4;

/// Per-link FEC configuration (carried into the container config).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FecConfig {
    /// Master switch; `false` behaves exactly like the pre-FEC stack.
    pub enabled: bool,
    /// Strongest rate this node is willing to run (advertised in `Hello`
    /// as the capability; the negotiated rate is the weaker of the two
    /// ends).
    pub cap: FecRate,
}

impl Default for FecConfig {
    fn default() -> Self {
        FecConfig { enabled: true, cap: FecRate::Max }
    }
}

impl FecConfig {
    /// The capability advertised on the wire: `Off` when disabled.
    pub fn advertised_cap(&self) -> FecRate {
        if self.enabled {
            self.cap
        } else {
            FecRate::Off
        }
    }
}

/// Sender-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FecTxStats {
    /// Data shards emitted (coded `RelData` envelopes).
    pub data_shards: u64,
    /// Parity shards emitted.
    pub parity_shards: u64,
    /// Messages sent bare because they exceeded [`MAX_SHARD_LEN`].
    pub bypassed: u64,
    /// Groups closed (full or flushed).
    pub groups: u64,
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FecRxStats {
    /// Data shards received off the wire.
    pub data_shards: u64,
    /// Parity shards received off the wire.
    pub parity_shards: u64,
    /// Shards reconstructed via parity (each one a saved retransmit RTT).
    pub recovered: u64,
    /// Groups retired with unrecoverable erasures (ARQ's RTO backstop
    /// covers these).
    pub unrecoverable_groups: u64,
    /// Duplicate or malformed shards ignored.
    pub discarded: u64,
}

/// Wraps a link's outgoing `RelData` stream into FEC groups.
#[derive(Debug)]
pub struct FecSender {
    channel: u16,
    encoder: GroupEncoder,
    controller: RateController,
    next_group: u64,
    /// Geometry of the open group (rate changes apply at group start).
    open: Option<(u8, u8)>,
    stats: FecTxStats,
}

impl FecSender {
    /// A sender bounded by the negotiated `cap`.
    pub fn new(channel: u16, cap: FecRate) -> Self {
        FecSender {
            channel,
            encoder: GroupEncoder::new(MAX_SHARD_LEN, 2),
            controller: RateController::new(cap),
            next_group: 0,
            open: None,
            stats: FecTxStats::default(),
        }
    }

    /// Sender counters.
    pub fn stats(&self) -> FecTxStats {
        self.stats
    }

    /// The rate currently in force.
    pub fn rate(&self) -> FecRate {
        self.controller.rate()
    }

    /// The negotiated ceiling.
    pub fn cap(&self) -> FecRate {
        self.controller.cap()
    }

    /// Re-negotiates the ceiling (peer capability learned or changed).
    /// Resets the controller to the lightest rate under the new cap but
    /// keeps group ids monotonic so the peer's decoder ring stays sane.
    /// Any open group is abandoned without parity — its data shards are
    /// already out and remain decodable (systematic code, ARQ backstop).
    pub fn set_cap(&mut self, cap: FecRate) {
        if self.open.take().is_some() {
            self.stats.groups += 1;
            self.next_group += 1;
        }
        self.controller = RateController::new(cap);
    }

    /// Feeds the peer's piggybacked loss estimate into the controller.
    pub fn on_loss_report(&mut self, loss_permille: u16) {
        self.controller.update(loss_permille);
    }

    /// `true` when a started group is still waiting for more shards.
    pub fn has_open_group(&self) -> bool {
        self.open.is_some()
    }

    /// Wraps one tagged inner message; pushes the resulting wire messages
    /// (the data shard now, plus the group's parity when it fills) onto
    /// `out`. Messages that cannot be coded are pushed through unchanged.
    pub fn wrap(&mut self, inner: Message, out: &mut Vec<Message>) {
        if self.controller.rate() == FecRate::Off {
            out.push(inner);
            return;
        }
        let tagged = inner.encode_tagged();
        if tagged.len() > self.encoder.max_shard() {
            self.stats.bypassed += 1;
            out.push(inner);
            return;
        }
        let (k, r) = match self.open {
            Some(geom) => geom,
            None => {
                let (k, r) = self.controller.rate().params();
                self.encoder.begin(k, r);
                self.open = Some((k, r));
                (k, r)
            }
        };
        let Some(index) = self.encoder.push(&tagged) else {
            // Group refused the shard (cannot happen with an open,
            // non-full group and a size-checked payload — but never
            // silently drop reliable traffic on a defensive branch).
            self.stats.bypassed += 1;
            out.push(inner);
            return;
        };
        self.stats.data_shards += 1;
        out.push(Message::FecShard {
            channel: self.channel,
            group: self.next_group,
            index,
            k,
            r,
            payload: tagged,
        });
        if self.encoder.is_full() {
            self.close_group(out);
        }
    }

    /// Closes the open group if any shards are pending, emitting its
    /// parity. Called by the link on tick boundaries so sparse traffic
    /// still gets repair shards with bounded delay.
    pub fn flush(&mut self, out: &mut Vec<Message>) {
        if self.open.is_some() && self.encoder.pushed() > 0 {
            self.close_group(out);
        } else {
            self.open = None;
        }
    }

    fn close_group(&mut self, out: &mut Vec<Message>) {
        let Some((_, r)) = self.open.take() else { return };
        let k_actual = self.encoder.pushed();
        for lane in 0..self.encoder.parity_lanes() {
            out.push(Message::FecShard {
                channel: self.channel,
                group: self.next_group,
                index: PARITY_INDEX_BIT | lane,
                k: k_actual,
                r,
                payload: Bytes::copy_from_slice(self.encoder.parity(lane)),
            });
            self.stats.parity_shards += 1;
        }
        self.stats.groups += 1;
        self.next_group += 1;
    }
}

/// Unwraps a link's incoming FEC shard stream, recovering erasures.
#[derive(Debug)]
pub struct FecReceiver {
    ring: Vec<GroupDecoder>,
    estimator: LossEstimator,
    /// Groups at or below this id are retired; late shards for them are
    /// passed through without bookkeeping.
    retired_below: u64,
    stats: FecRxStats,
}

impl Default for FecReceiver {
    fn default() -> Self {
        FecReceiver::new()
    }
}

impl FecReceiver {
    /// A receiver with a preallocated [`DECODER_RING`]-deep group ring.
    pub fn new() -> Self {
        FecReceiver {
            ring: (0..DECODER_RING).map(|_| GroupDecoder::new(MAX_SHARD_LEN, 2)).collect(),
            estimator: LossEstimator::new(),
            retired_below: 0,
            stats: FecRxStats::default(),
        }
    }

    /// Receiver counters.
    pub fn stats(&self) -> FecRxStats {
        self.stats
    }

    /// The smoothed shard-loss estimate, ready to piggyback on `RelAck`.
    pub fn loss_permille(&self) -> u16 {
        self.estimator.loss_permille()
    }

    /// Processes one shard. Inner tagged messages ready for the ARQ layer
    /// — the shard's own payload for a fresh data shard, plus any shards
    /// recovery just rebuilt — are appended to `deliver`.
    pub fn on_shard(
        &mut self,
        group: u64,
        index: u8,
        k: u8,
        r: u8,
        payload: &Bytes,
        deliver: &mut Vec<Bytes>,
    ) {
        let is_parity = index & PARITY_INDEX_BIT != 0;
        if is_parity {
            self.stats.parity_shards += 1;
        } else {
            self.stats.data_shards += 1;
        }
        let Some(slot) = self.slot_for(group) else {
            // Group already aged out of the ring: the data itself is
            // still perfectly good (ARQ dedups), only repair bookkeeping
            // is lost.
            if is_parity {
                self.stats.discarded += 1;
            } else {
                deliver.push(payload.clone());
            }
            return;
        };
        let outcome = if is_parity {
            self.ring[slot].on_parity(index & !PARITY_INDEX_BIT, k, r, payload)
        } else {
            self.ring[slot].on_data(index, r, payload)
        };
        match outcome {
            Absorb::Fresh if !is_parity => deliver.push(payload.clone()),
            Absorb::Fresh => {}
            Absorb::Duplicate => {
                self.stats.discarded += 1;
                return;
            }
            Absorb::Rejected => {
                self.stats.discarded += 1;
                // Malformed bookkeeping must not eat reliable data.
                if !is_parity {
                    deliver.push(payload.clone());
                }
                return;
            }
        }
        while let Some((_, data)) = self.ring[slot].recover() {
            self.stats.recovered += 1;
            deliver.push(Bytes::copy_from_slice(data));
        }
    }

    /// Finds (or evicts for) the decoder serving `group`.
    fn slot_for(&mut self, group: u64) -> Option<usize> {
        if group < self.retired_below {
            return None;
        }
        let mut free: Option<usize> = None;
        let mut oldest: Option<(usize, u64)> = None;
        for (i, d) in self.ring.iter().enumerate() {
            if d.in_use() {
                if d.group == group {
                    return Some(i);
                }
                match oldest {
                    Some((_, g)) if g <= d.group => {}
                    _ => oldest = Some((i, d.group)),
                }
            } else if free.is_none() {
                free = Some(i);
            }
        }
        if let Some(i) = free {
            self.ring[i].reset(group);
            return Some(i);
        }
        // Ring full: retire the oldest group, accounting its losses.
        let (i, evicted) = oldest?;
        if evicted > group {
            // Incoming shard is older than everything live: too late.
            return None;
        }
        self.retire_slot(i);
        self.retired_below = self.retired_below.max(evicted + 1);
        self.ring[i].reset(group);
        Some(i)
    }

    fn retire_slot(&mut self, i: usize) {
        let d = &mut self.ring[i];
        let expected = d.expected_count();
        let received = d.received_count();
        if expected > 0 {
            self.estimator.observe_group(received, expected);
            if received < expected {
                self.stats.unrecoverable_groups += 1;
            }
        }
        d.retire();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inner(seq: u64) -> Message {
        Message::RelData { channel: 0, seq, payload: Bytes::copy_from_slice(&seq.to_le_bytes()) }
    }

    fn roundtrip(drop: impl Fn(usize) -> bool, n: u64) -> (Vec<Message>, FecRxStats) {
        let mut tx = FecSender::new(0, FecRate::Medium);
        let mut wire = Vec::new();
        for seq in 0..n {
            tx.wrap(inner(seq), &mut wire);
        }
        tx.flush(&mut wire);
        let mut rx = FecReceiver::new();
        let mut delivered = Vec::new();
        for (i, m) in wire.iter().enumerate() {
            if drop(i) {
                continue;
            }
            let Message::FecShard { group, index, k, r, payload, .. } = m else {
                panic!("all coded at Medium: {m:?}");
            };
            rx.on_shard(*group, *index, *k, *r, payload, &mut delivered);
        }
        let msgs = delivered.iter().map(|b| Message::decode_tagged(b).expect("valid")).collect();
        (msgs, rx.stats())
    }

    #[test]
    fn lossless_stream_passes_straight_through() {
        let (msgs, stats) = roundtrip(|_| false, 8);
        assert_eq!(msgs.len(), 8);
        assert_eq!(stats.recovered, 0);
        assert_eq!(stats.unrecoverable_groups, 0);
        for (seq, m) in msgs.iter().enumerate() {
            assert_eq!(*m, inner(seq as u64));
        }
    }

    #[test]
    fn single_erasure_per_group_is_rebuilt_without_arq() {
        // Medium = (4, 1): wire layout per group is d d d d p.
        // Drop the second data shard of the first group (wire index 1).
        let (msgs, stats) = roundtrip(|i| i == 1, 8);
        assert_eq!(stats.recovered, 1);
        let mut seqs: Vec<u64> = msgs
            .iter()
            .map(|m| match m {
                Message::RelData { seq, .. } => *seq,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        seqs.sort_unstable();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>(), "every seq arrives, one via parity");
    }

    #[test]
    fn beyond_budget_losses_fall_through_to_arq() {
        // Drop two data shards of the same group: XOR cannot rebuild.
        let (msgs, _) = roundtrip(|i| i == 0 || i == 1, 4);
        assert_eq!(msgs.len(), 2, "survivors still delivered; ARQ covers the rest");
    }

    #[test]
    fn oversize_messages_bypass_coding() {
        let mut tx = FecSender::new(0, FecRate::Medium);
        let big = Message::RelData {
            channel: 0,
            seq: 1,
            payload: Bytes::from(vec![0u8; MAX_SHARD_LEN + 100]),
        };
        let mut out = Vec::new();
        tx.wrap(big.clone(), &mut out);
        assert_eq!(out, vec![big]);
        assert_eq!(tx.stats().bypassed, 1);
    }

    #[test]
    fn off_rate_is_a_no_op() {
        let mut tx = FecSender::new(0, FecRate::Off);
        let mut out = Vec::new();
        tx.wrap(inner(0), &mut out);
        tx.flush(&mut out);
        assert_eq!(out, vec![inner(0)]);
        assert_eq!(tx.stats().data_shards, 0);
    }

    #[test]
    fn loss_reports_tighten_the_sender_rate() {
        let mut tx = FecSender::new(0, FecRate::Max);
        assert_eq!(tx.rate(), FecRate::Light);
        tx.on_loss_report(250);
        assert_eq!(tx.rate(), FecRate::Max);
    }

    #[test]
    fn ring_eviction_feeds_the_estimator() {
        let mut tx = FecSender::new(0, FecRate::Max); // (2, 2) groups at Max
        tx.on_loss_report(999);
        let mut wire = Vec::new();
        for seq in 0..64 {
            tx.wrap(inner(seq), &mut wire);
        }
        tx.flush(&mut wire);
        let mut rx = FecReceiver::new();
        let mut delivered = Vec::new();
        // Drop every parity shard and every other data shard: heavy loss.
        for (i, m) in wire.iter().enumerate() {
            let Message::FecShard { group, index, k, r, payload, .. } = m else {
                panic!("coded stream expected");
            };
            if (index & PARITY_INDEX_BIT != 0) || i.is_multiple_of(2) {
                continue;
            }
            rx.on_shard(*group, *index, *k, *r, payload, &mut delivered);
        }
        assert!(rx.loss_permille() > 300, "estimator must see the bleed: {}", rx.loss_permille());
        assert!(rx.stats().unrecoverable_groups > 0);
    }

    #[test]
    fn late_shards_still_deliver_their_data() {
        let mut rx = FecReceiver::new();
        let mut delivered = Vec::new();
        // Groups 10..14 fill the ring and slide the retire watermark.
        for g in 10..14u64 {
            rx.on_shard(g, 0, 2, 1, &Bytes::from_static(b"live"), &mut delivered);
        }
        rx.on_shard(14, 0, 2, 1, &Bytes::from_static(b"evictor"), &mut delivered);
        let before = delivered.len();
        rx.on_shard(9, 0, 2, 1, &Bytes::from_static(b"late"), &mut delivered);
        assert_eq!(delivered.len(), before + 1, "late data passes through bare");
    }
}
