//! The code-rate table: the discrete operating points the adaptive
//! controller moves between.
//!
//! Each rate names an interleaved systematic `(k, r)` geometry: groups of
//! up to `k` data shards protected by `r` parity lanes (see
//! [`block`](crate::fec::block)). Stronger rates spend more redundant
//! bandwidth to survive more erasures per group — the classic goodput
//! trade the paper's degraded-radio regime cares about.

/// One operating point of the erasure code.
///
/// Ordered weakest-to-strongest so negotiation is a plain `min` and the
/// controller can step with `stronger`/`weaker`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum FecRate {
    /// No FEC: data travels bare (the negotiation result with a peer that
    /// advertises no FEC capability, and the disabled-config state).
    #[default]
    Off,
    /// 8 data shards, 1 parity lane — 12.5% overhead, survives 1 erasure
    /// per group.
    Light,
    /// 4 data shards, 1 parity lane — 25% overhead.
    Medium,
    /// 4 data shards, 2 parity lanes — 50% overhead, survives 1 erasure
    /// per lane (2 per group when they fall in different lanes).
    Strong,
    /// 2 data shards, 2 parity lanes — 100% overhead, the retry-storm
    /// escape hatch for the worst of the loss ramp.
    Max,
}

impl FecRate {
    /// Every rate, weakest first.
    pub const ALL: &'static [FecRate] =
        &[FecRate::Off, FecRate::Light, FecRate::Medium, FecRate::Strong, FecRate::Max];

    /// `(k, r)`: data shards per group, parity lanes per group. `(0, 0)`
    /// for [`FecRate::Off`].
    pub fn params(self) -> (u8, u8) {
        match self {
            FecRate::Off => (0, 0),
            FecRate::Light => (8, 1),
            FecRate::Medium => (4, 1),
            FecRate::Strong => (4, 2),
            FecRate::Max => (2, 2),
        }
    }

    /// Stable wire tag (carried as the `fec_cap` capability in `Hello`).
    pub fn wire_tag(self) -> u8 {
        match self {
            FecRate::Off => 0,
            FecRate::Light => 1,
            FecRate::Medium => 2,
            FecRate::Strong => 3,
            FecRate::Max => 4,
        }
    }

    /// Inverse of [`FecRate::wire_tag`]. Unknown tags collapse to `Off`
    /// (a peer advertising a capability we do not know is treated as
    /// FEC-incapable rather than rejected — forward compatible).
    pub fn from_wire_tag(tag: u8) -> FecRate {
        match tag {
            1 => FecRate::Light,
            2 => FecRate::Medium,
            3 => FecRate::Strong,
            4 => FecRate::Max,
            _ => FecRate::Off,
        }
    }

    /// Parity overhead in permille (`r / k`), 0 for `Off`.
    pub fn overhead_permille(self) -> u32 {
        let (k, r) = self.params();
        if k == 0 {
            0
        } else {
            u32::from(r) * 1000 / u32::from(k)
        }
    }

    /// The next stronger rate (saturates at [`FecRate::Max`]).
    pub fn stronger(self) -> FecRate {
        match self {
            FecRate::Off => FecRate::Light,
            FecRate::Light => FecRate::Medium,
            FecRate::Medium => FecRate::Strong,
            FecRate::Strong | FecRate::Max => FecRate::Max,
        }
    }

    /// The next weaker rate; never drops below [`FecRate::Light`] — once a
    /// link runs FEC, the lightest geometry stays on so the loss signal
    /// keeps flowing (`Off` is a negotiation outcome, not a controller
    /// state).
    pub fn weaker(self) -> FecRate {
        match self {
            FecRate::Off | FecRate::Light | FecRate::Medium => FecRate::Light,
            FecRate::Strong => FecRate::Medium,
            FecRate::Max => FecRate::Strong,
        }
    }

    /// The rate both ends can run: the weaker of the two capabilities.
    pub fn negotiate(self, peer: FecRate) -> FecRate {
        self.min(peer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_roundtrip() {
        for &r in FecRate::ALL {
            assert_eq!(FecRate::from_wire_tag(r.wire_tag()), r);
        }
        assert_eq!(FecRate::from_wire_tag(200), FecRate::Off);
    }

    #[test]
    fn params_are_sane() {
        for &rate in FecRate::ALL {
            let (k, r) = rate.params();
            if rate == FecRate::Off {
                assert_eq!((k, r), (0, 0));
            } else {
                assert!(k >= 1 && r >= 1 && r <= k, "{rate:?}");
            }
        }
    }

    #[test]
    fn ordering_matches_strength() {
        assert!(FecRate::Off < FecRate::Light);
        assert!(FecRate::Light < FecRate::Medium);
        assert!(FecRate::Medium < FecRate::Strong);
        assert!(FecRate::Strong < FecRate::Max);
        // Overhead grows with strength.
        let mut last = 0;
        for &rate in FecRate::ALL {
            assert!(rate.overhead_permille() >= last);
            last = rate.overhead_permille();
        }
    }

    #[test]
    fn negotiate_takes_the_weaker_end() {
        assert_eq!(FecRate::Max.negotiate(FecRate::Medium), FecRate::Medium);
        assert_eq!(FecRate::Off.negotiate(FecRate::Max), FecRate::Off);
    }

    #[test]
    fn stepping_saturates() {
        assert_eq!(FecRate::Max.stronger(), FecRate::Max);
        assert_eq!(FecRate::Light.weaker(), FecRate::Light);
        assert_eq!(FecRate::Off.stronger(), FecRate::Light);
    }
}
