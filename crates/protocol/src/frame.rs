//! Frame layout: fixed 16-byte header + payload, CRC32-protected.
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0x4D41 ("MA", little-endian)
//! 2       1     protocol version
//! 3       1     message kind
//! 4       4     source node id (LE)
//! 8       4     payload length (LE)
//! 12      4     crc32 over bytes 0..12 ++ payload (LE)
//! 16      n     payload
//! ```
//!
//! The CRC covers header fields and payload so that a corrupted kind or
//! source id is rejected, not just corrupted payload bytes.

use bytes::{BufMut, Bytes, BytesMut};

use crate::crc::crc32_update;
use crate::error::FrameError;
use crate::ids::NodeId;
use crate::messages::MessageKind;

/// Frame magic: ASCII "MA" read as a little-endian u16.
pub const FRAME_MAGIC: u16 = u16::from_le_bytes(*b"MA");

/// Current protocol version.
pub const PROTOCOL_VERSION: u8 = 1;

/// Size of the fixed header (including CRC) in bytes.
pub const FRAME_HEADER_LEN: usize = 16;

/// Maximum accepted payload size. Larger application payloads must be
/// fragmented (see [`crate::fragment`]).
pub const MAX_FRAME_PAYLOAD: usize = 4 * 1024 * 1024;

/// Parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version of the sender.
    pub version: u8,
    /// Kind of the message carried in the payload.
    pub kind: MessageKind,
    /// Node that emitted the frame.
    pub src: NodeId,
    /// Payload length in bytes.
    pub payload_len: u32,
}

/// A complete wire frame: header plus payload bytes.
///
/// # Examples
///
/// ```
/// use marea_protocol::{Frame, MessageKind, NodeId};
///
/// let f = Frame::new(NodeId(3), MessageKind::Heartbeat, b"beat".as_ref().into());
/// let wire = f.encode();
/// let back = Frame::decode(&wire).unwrap();
/// assert_eq!(back.header().src, NodeId(3));
/// assert_eq!(back.payload(), b"beat");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    header: FrameHeader,
    payload: Bytes,
}

impl Frame {
    /// Builds a frame from parts.
    ///
    /// # Panics
    ///
    /// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`]; callers fragment
    /// larger payloads first (this is an internal programming error, not a
    /// runtime condition).
    pub fn new(src: NodeId, kind: MessageKind, payload: Bytes) -> Self {
        assert!(
            payload.len() <= MAX_FRAME_PAYLOAD,
            "payload of {} bytes must be fragmented before framing",
            payload.len()
        );
        Frame {
            header: FrameHeader {
                version: PROTOCOL_VERSION,
                kind,
                src,
                payload_len: payload.len() as u32,
            },
            payload,
        }
    }

    /// The parsed header.
    pub fn header(&self) -> &FrameHeader {
        &self.header
    }

    /// The payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Consumes the frame, returning the payload.
    pub fn into_payload(self) -> Bytes {
        self.payload
    }

    /// Total encoded size in bytes.
    pub fn wire_len(&self) -> usize {
        FRAME_HEADER_LEN + self.payload.len()
    }

    /// Serializes the frame.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(self.wire_len());
        buf.put_u16_le(FRAME_MAGIC);
        buf.put_u8(self.header.version);
        buf.put_u8(self.header.kind.wire_tag());
        buf.put_u32_le(self.header.src.0);
        buf.put_u32_le(self.header.payload_len);
        let crc = {
            let state = crc32_update(0xFFFF_FFFF, &buf);
            crc32_update(state, &self.payload) ^ 0xFFFF_FFFF
        };
        buf.put_u32_le(crc);
        buf.put_slice(&self.payload);
        buf.freeze()
    }

    /// Parses a frame from raw bytes, verifying magic, version, kind, length
    /// and CRC.
    ///
    /// # Errors
    ///
    /// Any [`FrameError`] describing the first malformed element.
    pub fn decode(input: &[u8]) -> Result<Frame, FrameError> {
        if input.len() < FRAME_HEADER_LEN {
            return Err(FrameError::TooShort { len: input.len() });
        }
        let magic = u16::from_le_bytes([input[0], input[1]]);
        if magic != FRAME_MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        let version = input[2];
        if version != PROTOCOL_VERSION {
            return Err(FrameError::BadVersion(version));
        }
        let kind = MessageKind::from_wire_tag(input[3]).ok_or(FrameError::BadKind(input[3]))?;
        let src = NodeId(u32::from_le_bytes([input[4], input[5], input[6], input[7]]));
        let payload_len = u32::from_le_bytes([input[8], input[9], input[10], input[11]]);
        if payload_len as usize > MAX_FRAME_PAYLOAD {
            return Err(FrameError::PayloadTooLarge(payload_len));
        }
        let stored_crc = u32::from_le_bytes([input[12], input[13], input[14], input[15]]);
        let payload = &input[FRAME_HEADER_LEN..];
        if payload.len() != payload_len as usize {
            return Err(FrameError::LengthMismatch {
                declared: payload_len,
                actual: payload.len(),
            });
        }
        let computed = {
            let state = crc32_update(0xFFFF_FFFF, &input[..12]);
            crc32_update(state, payload) ^ 0xFFFF_FFFF
        };
        if computed != stored_crc {
            return Err(FrameError::BadCrc { stored: stored_crc, computed });
        }
        Ok(Frame {
            header: FrameHeader { version, kind, src, payload_len },
            payload: Bytes::copy_from_slice(payload),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::new(NodeId(9), MessageKind::VarSample, Bytes::from_static(b"payload"))
    }

    #[test]
    fn roundtrip() {
        let f = sample();
        let wire = f.encode();
        assert_eq!(wire.len(), FRAME_HEADER_LEN + 7);
        let back = Frame::decode(&wire).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn empty_payload_roundtrips() {
        let f = Frame::new(NodeId(0), MessageKind::Bye, Bytes::new());
        let back = Frame::decode(&f.encode()).unwrap();
        assert_eq!(back.payload(), b"");
        assert_eq!(back.header().kind, MessageKind::Bye);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut wire = sample().encode().to_vec();
        wire[0] ^= 0xFF;
        assert_eq!(
            Frame::decode(&wire),
            Err(FrameError::BadMagic(u16::from_le_bytes([wire[0], wire[1]])))
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut wire = sample().encode().to_vec();
        wire[2] = 99;
        assert_eq!(Frame::decode(&wire), Err(FrameError::BadVersion(99)));
    }

    #[test]
    fn rejects_unknown_kind() {
        let mut wire = sample().encode().to_vec();
        wire[3] = 0xEF;
        assert_eq!(Frame::decode(&wire), Err(FrameError::BadKind(0xEF)));
    }

    #[test]
    fn rejects_truncation_and_extension() {
        let wire = sample().encode();
        assert!(matches!(Frame::decode(&wire[..10]), Err(FrameError::TooShort { .. })));
        assert!(matches!(
            Frame::decode(&wire[..wire.len() - 1]),
            Err(FrameError::LengthMismatch { .. })
        ));
        let mut extended = wire.to_vec();
        extended.push(0);
        assert!(matches!(Frame::decode(&extended), Err(FrameError::LengthMismatch { .. })));
    }

    #[test]
    fn rejects_corruption_anywhere() {
        let wire = sample().encode().to_vec();
        // Flip each payload byte and each header byte not already covered by
        // a structural check; CRC must catch them.
        for i in [4usize, 5, 6, 7, 16, 17, wire.len() - 1] {
            let mut w = wire.clone();
            w[i] ^= 0x01;
            assert!(Frame::decode(&w).is_err(), "corruption at byte {i} undetected");
        }
    }

    #[test]
    #[should_panic(expected = "must be fragmented")]
    fn oversized_payload_panics() {
        let huge = Bytes::from(vec![0u8; MAX_FRAME_PAYLOAD + 1]);
        let _ = Frame::new(NodeId(1), MessageKind::FileChunk, huge);
    }
}
