//! Fragmentation and reassembly of payloads larger than the transport MTU.
//!
//! The transport layer reports an MTU; any logical message whose frame
//! would exceed it is split into [`Message::Fragment`]s. Fragments of
//! different logical messages may interleave on the wire (and arrive
//! reordered or duplicated from multicast retransmission), so the
//! [`Reassembler`] keys buffers by `(source node, message id)` and evicts
//! incomplete sets after a timeout — best-effort traffic must never pin
//! memory on a low-resource node.

use std::collections::HashMap;

use bytes::{Bytes, BytesMut};

use crate::error::ProtocolError;
use crate::ids::NodeId;
use crate::messages::Message;
use crate::time::{Micros, ProtoDuration};

/// Upper bound on fragments per logical message.
pub const MAX_FRAGMENTS: u32 = 64 * 1024;

/// Upper bound on concurrently reassembling messages per source.
const MAX_PENDING_PER_SOURCE: usize = 64;

/// Splits `payload` into fragment messages of at most `max_chunk` bytes.
///
/// Returns a single-element vector when the payload already fits — callers
/// can treat the fragmentation path uniformly.
///
/// # Errors
///
/// [`ProtocolError::BadFragment`] when `max_chunk` is zero or the payload
/// would need more than [`MAX_FRAGMENTS`] pieces.
pub fn fragment_payload(
    msg_id: u64,
    payload: &[u8],
    max_chunk: usize,
) -> Result<Vec<Message>, ProtocolError> {
    if max_chunk == 0 {
        return Err(ProtocolError::BadFragment("fragment size of zero"));
    }
    let count = payload.len().div_ceil(max_chunk).max(1);
    if count > MAX_FRAGMENTS as usize {
        return Err(ProtocolError::BadFragment("payload needs too many fragments"));
    }
    let mut out = Vec::with_capacity(count);
    for (index, chunk) in payload.chunks(max_chunk).enumerate() {
        out.push(Message::Fragment {
            msg_id,
            index: index as u32,
            count: count as u32,
            payload: Bytes::copy_from_slice(chunk),
        });
    }
    if payload.is_empty() {
        out.push(Message::Fragment { msg_id, index: 0, count: 1, payload: Bytes::new() });
    }
    Ok(out)
}

#[derive(Debug)]
struct Pending {
    parts: Vec<Option<Bytes>>,
    received: u32,
    first_seen: Micros,
}

/// Reassembles interleaved fragment streams from many sources.
#[derive(Debug)]
pub struct Reassembler {
    pending: HashMap<(NodeId, u64), Pending>,
    timeout: ProtoDuration,
}

impl Reassembler {
    /// Creates a reassembler that drops incomplete messages after `timeout`.
    pub fn new(timeout: ProtoDuration) -> Self {
        Reassembler { pending: HashMap::new(), timeout }
    }

    /// Number of partially reassembled messages currently buffered.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Offers one received fragment; returns the full payload when this
    /// fragment completes its set.
    ///
    /// Duplicated fragments are ignored; inconsistent counts abort the set.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::BadFragment`] on inconsistent metadata (index out of
    /// range, count mismatch, zero count, over-limit counts or per-source
    /// buffer exhaustion).
    pub fn offer(
        &mut self,
        src: NodeId,
        msg_id: u64,
        index: u32,
        count: u32,
        payload: Bytes,
        now: Micros,
    ) -> Result<Option<Bytes>, ProtocolError> {
        if count == 0 {
            return Err(ProtocolError::BadFragment("fragment count of zero"));
        }
        if count > MAX_FRAGMENTS {
            return Err(ProtocolError::BadFragment("fragment count over limit"));
        }
        if index >= count {
            return Err(ProtocolError::BadFragment("fragment index out of range"));
        }
        // Fast path: unfragmented payload.
        if count == 1 {
            return Ok(Some(payload));
        }
        let key = (src, msg_id);
        if !self.pending.contains_key(&key) {
            // marea-lint: allow(D1): cardinality count; iteration order cannot affect the result
            let per_source = self.pending.keys().filter(|(s, _)| *s == src).count();
            if per_source >= MAX_PENDING_PER_SOURCE {
                return Err(ProtocolError::BadFragment("too many pending messages from source"));
            }
        }
        let entry = self.pending.entry(key).or_insert_with(|| Pending {
            parts: vec![None; count as usize],
            received: 0,
            first_seen: now,
        });
        if entry.parts.len() != count as usize {
            // A mismatched count means the stream is corrupt; drop the set.
            self.pending.remove(&key);
            return Err(ProtocolError::BadFragment("fragment count changed mid-stream"));
        }
        let slot = &mut entry.parts[index as usize];
        if slot.is_none() {
            *slot = Some(payload);
            entry.received += 1;
        }
        if entry.received == count {
            let Some(entry) = self.pending.remove(&key) else { return Ok(None) };
            let mut full = BytesMut::new();
            // `received == count` means every slot is filled; `flatten`
            // states that without a panic path.
            for part in entry.parts.into_iter().flatten() {
                full.extend_from_slice(&part);
            }
            return Ok(Some(full.freeze()));
        }
        Ok(None)
    }

    /// Drops incomplete sets older than the timeout; returns how many were
    /// evicted.
    pub fn expire(&mut self, now: Micros) -> usize {
        let timeout = self.timeout;
        let before = self.pending.len();
        self.pending.retain(|_, p| now.saturating_since(p.first_seen) < timeout);
        before - self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parts_of(msgs: &[Message]) -> Vec<(u64, u32, u32, Bytes)> {
        msgs.iter()
            .map(|m| match m {
                Message::Fragment { msg_id, index, count, payload } => {
                    (*msg_id, *index, *count, payload.clone())
                }
                other => panic!("unexpected {other:?}"),
            })
            .collect()
    }

    #[test]
    fn fragments_cover_payload_exactly() {
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let frags = fragment_payload(1, &payload, 1024).unwrap();
        assert_eq!(frags.len(), 10);
        let mut r = Reassembler::new(ProtoDuration::from_secs(1));
        let mut done = None;
        for (id, idx, cnt, bytes) in parts_of(&frags) {
            done = r.offer(NodeId(1), id, idx, cnt, bytes, Micros::ZERO).unwrap();
        }
        assert_eq!(done.unwrap().as_ref(), payload.as_slice());
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn small_payload_is_single_fragment() {
        let frags = fragment_payload(2, b"tiny", 1024).unwrap();
        assert_eq!(frags.len(), 1);
        let mut r = Reassembler::new(ProtoDuration::from_secs(1));
        let (id, idx, cnt, bytes) = parts_of(&frags).remove(0);
        let out = r.offer(NodeId(1), id, idx, cnt, bytes, Micros::ZERO).unwrap();
        assert_eq!(out.unwrap().as_ref(), b"tiny");
    }

    #[test]
    fn empty_payload_works() {
        let frags = fragment_payload(3, b"", 1024).unwrap();
        assert_eq!(frags.len(), 1);
    }

    #[test]
    fn out_of_order_and_duplicates_are_handled() {
        let payload: Vec<u8> = (0..5000u32).map(|i| i as u8).collect();
        let frags = parts_of(&fragment_payload(4, &payload, 999).unwrap());
        let mut r = Reassembler::new(ProtoDuration::from_secs(1));
        let mut order: Vec<usize> = (0..frags.len()).rev().collect();
        order.push(0); // duplicate
        let mut done = None;
        for i in order {
            let (id, idx, cnt, bytes) = frags[i].clone();
            if let Some(full) = r.offer(NodeId(9), id, idx, cnt, bytes, Micros::ZERO).unwrap() {
                done = Some(full);
            }
        }
        assert_eq!(done.unwrap().as_ref(), payload.as_slice());
    }

    #[test]
    fn interleaved_sources_do_not_collide() {
        let a = parts_of(&fragment_payload(7, b"aaaaaaaaaa", 4).unwrap());
        let b = parts_of(&fragment_payload(7, b"bbbbbbbbbb", 4).unwrap());
        let mut r = Reassembler::new(ProtoDuration::from_secs(1));
        let mut got = Vec::new();
        for ((id_a, ia, ca, pa), (id_b, ib, cb, pb)) in a.into_iter().zip(b) {
            if let Some(f) = r.offer(NodeId(1), id_a, ia, ca, pa, Micros::ZERO).unwrap() {
                got.push(f);
            }
            if let Some(f) = r.offer(NodeId(2), id_b, ib, cb, pb, Micros::ZERO).unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got.len(), 2);
        assert_eq!(got[0].as_ref(), b"aaaaaaaaaa");
        assert_eq!(got[1].as_ref(), b"bbbbbbbbbb");
    }

    #[test]
    fn timeout_evicts_incomplete_sets() {
        let frags = parts_of(&fragment_payload(5, &[0u8; 4000], 1000).unwrap());
        let mut r = Reassembler::new(ProtoDuration::from_millis(100));
        let (id, idx, cnt, bytes) = frags[0].clone();
        r.offer(NodeId(1), id, idx, cnt, bytes, Micros::ZERO).unwrap();
        assert_eq!(r.pending_count(), 1);
        assert_eq!(r.expire(Micros::from_millis(50)), 0);
        assert_eq!(r.expire(Micros::from_millis(150)), 1);
        assert_eq!(r.pending_count(), 0);
    }

    #[test]
    fn bad_metadata_is_rejected() {
        let mut r = Reassembler::new(ProtoDuration::from_secs(1));
        assert!(r.offer(NodeId(1), 1, 0, 0, Bytes::new(), Micros::ZERO).is_err());
        assert!(r.offer(NodeId(1), 1, 5, 3, Bytes::new(), Micros::ZERO).is_err());
        assert!(r.offer(NodeId(1), 1, 0, MAX_FRAGMENTS + 1, Bytes::new(), Micros::ZERO).is_err());
    }

    #[test]
    fn count_change_mid_stream_aborts_set() {
        let mut r = Reassembler::new(ProtoDuration::from_secs(1));
        r.offer(NodeId(1), 8, 0, 3, Bytes::from_static(b"x"), Micros::ZERO).unwrap();
        let err = r.offer(NodeId(1), 8, 1, 4, Bytes::from_static(b"y"), Micros::ZERO);
        assert!(err.is_err());
        assert_eq!(r.pending_count(), 0, "corrupt set is dropped");
    }

    #[test]
    fn per_source_buffer_limit() {
        let mut r = Reassembler::new(ProtoDuration::from_secs(1));
        for id in 0..64u64 {
            r.offer(NodeId(1), id, 0, 2, Bytes::new(), Micros::ZERO).unwrap();
        }
        assert!(r.offer(NodeId(1), 999, 0, 2, Bytes::new(), Micros::ZERO).is_err());
        // A different source is unaffected.
        assert!(r.offer(NodeId(2), 999, 0, 2, Bytes::new(), Micros::ZERO).is_ok());
    }

    #[test]
    fn zero_chunk_size_is_rejected() {
        assert!(fragment_payload(1, b"abc", 0).is_err());
    }
}
