//! Property tests for the protocol state machines.
//!
//! These drive the ARQ and MFTP machinery through adversarial loss/reorder
//! schedules and assert the end-to-end invariants the middleware relies on:
//! exactly-once in-order delivery for the reliable channel, and bit-exact
//! file reconstruction for the bulk transfer protocol.

use bytes::Bytes;
use proptest::prelude::*;

use marea_presentation::Name;
use marea_protocol::arq::{ArqConfig, ArqReceiver, ArqSender};
use marea_protocol::fec::{FecRate, FecReceiver, FecSender};
use marea_protocol::fragment::{fragment_payload, Reassembler};
use marea_protocol::mftp::{FileReceiver, FileSender, RevisionPolicy};
use marea_protocol::{Frame, GroupId, Message, Micros, NodeId, ProtoDuration, TransferId};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// ARQ delivers every message exactly once, in order, under arbitrary
    /// per-transmission loss (as long as loss is not total) — the §4.2
    /// guarantee behind the event primitive.
    #[test]
    fn arq_delivers_exactly_once_in_order(
        payload_count in 1usize..40,
        loss_seed in any::<u64>(),
        loss_permille in 0u32..700,
    ) {
        let cfg = ArqConfig {
            window: 16,
            initial_rto: ProtoDuration::from_millis(20),
            max_rto: ProtoDuration::from_millis(200),
            max_attempts: 30,
        };
        let mut tx = ArqSender::new(1, cfg);
        let mut rx = ArqReceiver::new(1, 64);
        let mut delivered: Vec<Bytes> = Vec::new();
        let mut to_send: Vec<Bytes> =
            (0..payload_count).map(|i| Bytes::from(vec![i as u8; 8])).collect();
        to_send.reverse();

        // Simple deterministic PRNG for the loss schedule.
        let mut state = loss_seed | 1;
        let mut chance = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as u32
        };

        let mut now = Micros::ZERO;
        let mut stalled_iters = 0;
        while delivered.len() < payload_count {
            // Feed the window.
            while tx.can_send() {
                let Some(p) = to_send.pop() else { break };
                let msg = tx.send(p, now).unwrap();
                if chance() >= loss_permille {
                    if let Message::RelData { seq, payload, .. } = msg {
                        delivered.extend(rx.on_data(seq, payload));
                    }
                }
            }
            // Retransmissions (lossy too).
            let (retx, failed) = tx.poll(now);
            prop_assert!(failed.is_empty(), "retry budget must suffice at this loss rate");
            for msg in retx {
                if chance() >= loss_permille {
                    if let Message::RelData { seq, payload, .. } = msg {
                        delivered.extend(rx.on_data(seq, payload));
                    }
                }
            }
            // Ack path (also lossy).
            if chance() >= loss_permille {
                if let Message::RelAck { cumulative, sack, .. } = rx.make_ack() {
                    tx.on_ack(cumulative, sack);
                }
            }
            now += ProtoDuration::from_millis(25);
            stalled_iters += 1;
            prop_assert!(stalled_iters < 4000, "must converge");
        }
        prop_assert_eq!(delivered.len(), payload_count);
        for (i, p) in delivered.iter().enumerate() {
            let expected = vec![i as u8; 8];
            prop_assert_eq!(p.as_ref(), expected.as_slice());
        }
        // Exactly-once: nothing extra arrives later.
        let (retx, _) = tx.poll(now + ProtoDuration::from_secs(10));
        for msg in retx {
            if let Message::RelData { seq, payload, .. } = msg {
                prop_assert!(rx.on_data(seq, payload).is_empty());
            }
        }
    }

    /// MFTP reconstructs the exact file bytes for every subscriber under
    /// arbitrary independent chunk loss, in a bounded number of rounds.
    #[test]
    fn mftp_reconstructs_exact_bytes(
        size in 0usize..8000,
        chunk_size in 1u32..700,
        n_subs in 1usize..5,
        loss_seed in any::<u64>(),
        loss_permille in 0u32..500,
    ) {
        let data: Vec<u8> = (0..size).map(|i| (i * 31 % 255) as u8).collect();
        let mut s = FileSender::new(
            TransferId(9),
            Name::new("blob").unwrap(),
            1,
            Bytes::from(data.clone()),
            chunk_size,
            GroupId(3),
        ).unwrap();
        let mut rxs = Vec::new();
        for i in 0..n_subs {
            let node = NodeId(10 + i as u32);
            s.on_subscribe(node);
            let (rx, _sub) =
                FileReceiver::from_announce(&s.announce(), node, RevisionPolicy::Restart).unwrap();
            rxs.push(rx);
        }

        let mut state = loss_seed | 1;
        let mut chance = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as u32
        };

        let mut rounds = 0;
        loop {
            loop {
                let chunks = s.next_chunks(32);
                if chunks.is_empty() {
                    break;
                }
                for c in &chunks {
                    if let Message::FileChunk { revision, index, payload, .. } = c {
                        for rx in rxs.iter_mut() {
                            if chance() >= loss_permille {
                                rx.on_chunk(*revision, *index, payload);
                            }
                        }
                    }
                }
            }
            let q = s.query();
            let Message::FileQuery { revision, .. } = q else { unreachable!() };
            for rx in &rxs {
                match rx.on_query(revision) {
                    Some(Message::FileAck { subscriber, revision, .. }) => {
                        s.on_ack(subscriber, revision);
                    }
                    Some(Message::FileNack { subscriber, revision, runs, .. }) => {
                        s.on_nack(subscriber, revision, &runs).unwrap();
                    }
                    _ => {}
                }
            }
            if s.is_complete() {
                break;
            }
            rounds += 1;
            prop_assert!(rounds < 200, "transfer must converge");
        }
        for rx in rxs {
            prop_assert!(rx.is_complete());
            let got = rx.into_data();
            prop_assert_eq!(got.as_ref(), data.as_slice());
        }
    }

    /// MFTP reconstructs exact bytes when the chunk stream is *adversarial*
    /// end to end: seeded per-replica loss, per-round reordering and
    /// duplicated deliveries — the multicast reality of a lossy radio LAN
    /// where retransmitted repair rounds interleave with stragglers.
    #[test]
    fn mftp_survives_loss_reorder_and_duplication(
        size in 1usize..6000,
        chunk_size in 16u32..700,
        n_subs in 1usize..4,
        chaos_seed in any::<u64>(),
        loss_permille in 0u32..400,
    ) {
        let data: Vec<u8> = (0..size).map(|i| (i * 131 % 251) as u8).collect();
        let mut s = FileSender::new(
            TransferId(11),
            Name::new("chaos-blob").unwrap(),
            1,
            Bytes::from(data.clone()),
            chunk_size,
            GroupId(5),
        ).unwrap();
        let mut rxs = Vec::new();
        for i in 0..n_subs {
            let node = NodeId(20 + i as u32);
            s.on_subscribe(node);
            let (rx, _sub) =
                FileReceiver::from_announce(&s.announce(), node, RevisionPolicy::Restart).unwrap();
            rxs.push(rx);
        }

        let mut state = chaos_seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        let mut rounds = 0;
        loop {
            // Drain the sender's pending chunks for this round.
            let mut round: Vec<Message> = Vec::new();
            loop {
                let chunks = s.next_chunks(16);
                if chunks.is_empty() {
                    break;
                }
                round.extend(chunks);
            }
            // Adversarial delivery per receiver: independent loss, a
            // seeded rotation (reorder), and one duplicated chunk.
            for rx in rxs.iter_mut() {
                let mut deliver: Vec<&Message> =
                    round.iter().filter(|_| next() % 1000 >= loss_permille).collect();
                if !deliver.is_empty() {
                    let rot = next() as usize % deliver.len();
                    deliver.rotate_left(rot);
                    deliver.push(deliver[next() as usize % deliver.len()]);
                }
                for c in deliver {
                    if let Message::FileChunk { revision, index, payload, .. } = c {
                        rx.on_chunk(*revision, *index, payload);
                    }
                }
            }
            // Repair round-trip (queries/acks/nacks are lossless here —
            // the ARQ below them is covered by its own property).
            let Message::FileQuery { revision, .. } = s.query() else { unreachable!() };
            for rx in &rxs {
                match rx.on_query(revision) {
                    Some(Message::FileAck { subscriber, revision, .. }) => {
                        s.on_ack(subscriber, revision);
                    }
                    Some(Message::FileNack { subscriber, revision, runs, .. }) => {
                        s.on_nack(subscriber, revision, &runs).unwrap();
                    }
                    _ => {}
                }
            }
            if s.is_complete() {
                break;
            }
            rounds += 1;
            prop_assert!(rounds < 300, "transfer must converge under chaos");
        }
        for rx in rxs {
            prop_assert!(rx.is_complete());
            let got = rx.into_data();
            prop_assert_eq!(got.as_ref(), data.as_slice(), "bit-exact after chaos");
        }
    }

    /// FEC encode→erase→decode roundtrip: with at most one data shard
    /// erased per parity lane and the parity delivered, every wrapped
    /// message comes back bit-exact without any retransmission — the
    /// repair the layer exists to buy.
    #[test]
    fn fec_roundtrip_recovers_in_budget_erasures(
        group_count in 1usize..12,
        erase_seed in any::<u64>(),
        rate_loss in 0u16..400,
    ) {
        let mut tx = FecSender::new(1, FecRate::Max);
        tx.on_loss_report(rate_loss); // pick a geometry from the table
        let (k, r) = tx.rate().params();
        prop_assert!(r >= 1);

        let mut state = erase_seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        let mut rx = FecReceiver::new();
        let mut sent: Vec<Bytes> = Vec::new();
        let mut delivered: Vec<Bytes> = Vec::new();
        let mut recovered_groups = 0u64;
        for g in 0..group_count {
            let mut wire = Vec::new();
            for i in 0..k {
                let payload = Bytes::from(vec![(g * 16 + usize::from(i)) as u8; 4]);
                let inner = Message::RelData { channel: 1, seq: sent.len() as u64, payload };
                sent.push(inner.encode_tagged());
                tx.wrap(inner, &mut wire);
            }
            // One erased data shard per group, on a seeded index (a lane
            // never loses more than one member when r divides the picks).
            let erase_all_parity = next() % 4 == 0 && r == 1;
            let victim = if erase_all_parity { None } else { Some((next() % u32::from(k)) as u8) };
            if victim.is_some() {
                recovered_groups += 1;
            }
            for m in wire {
                let Message::FecShard { group, index, k, r, payload, .. } = m else {
                    panic!("coded wire expected: {m:?}");
                };
                if Some(index) == victim {
                    continue; // erased by the radio
                }
                if erase_all_parity && index & 0x80 != 0 {
                    continue; // lost parity: group closes with no repair due
                }
                rx.on_shard(group, index, k, r, &payload, &mut delivered);
            }
        }
        prop_assert_eq!(delivered.len(), sent.len(), "one erasure per group is always repaired");
        let mut got = delivered.clone();
        got.sort();
        let mut want = sent.clone();
        want.sort();
        prop_assert_eq!(got, want, "recovered frames must be bit-exact");
        prop_assert_eq!(rx.stats().recovered, recovered_groups);
    }

    /// The full reliable stack — ARQ above, FEC below — delivers exactly
    /// once, in order, when the shard stream is adversarial: seeded
    /// erasure, per-round reordering and duplicated shards. Losses beyond
    /// the parity budget fall through to ARQ's retransmit timers cleanly,
    /// so the property holds at loss rates FEC alone cannot absorb.
    #[test]
    fn fec_below_arq_survives_loss_reorder_and_duplication(
        payload_count in 1usize..30,
        chaos_seed in any::<u64>(),
        loss_permille in 0u32..500,
    ) {
        let cfg = ArqConfig {
            window: 16,
            initial_rto: ProtoDuration::from_millis(20),
            max_rto: ProtoDuration::from_millis(200),
            max_attempts: 40,
        };
        let mut arq_tx = ArqSender::new(1, cfg);
        let mut arq_rx = ArqReceiver::new(1, 64);
        let mut fec_tx = FecSender::new(1, FecRate::Max);
        let mut fec_rx = FecReceiver::new();

        let mut state = chaos_seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };

        let mut to_send: Vec<Bytes> =
            (0..payload_count).map(|i| Bytes::from(vec![i as u8; 8])).collect();
        to_send.reverse();
        let mut delivered: Vec<Bytes> = Vec::new();
        let mut now = Micros::ZERO;
        let mut rounds = 0;
        while delivered.len() < payload_count {
            // Produce this round's coded wire traffic.
            let mut wire: Vec<Message> = Vec::new();
            while arq_tx.can_send() {
                let Some(p) = to_send.pop() else { break };
                fec_tx.wrap(arq_tx.send(p, now).unwrap(), &mut wire);
            }
            let (retx, failed) = arq_tx.poll(now);
            prop_assert!(failed.is_empty(), "retry budget must suffice");
            for m in retx {
                fec_tx.wrap(m, &mut wire);
            }
            fec_tx.flush(&mut wire); // tick boundary: close the partial group
            // Adversarial channel: seeded loss, rotation, one duplicate.
            let mut channel: Vec<&Message> =
                wire.iter().filter(|_| next() % 1000 >= loss_permille).collect();
            if !channel.is_empty() {
                let rot = next() as usize % channel.len();
                channel.rotate_left(rot);
                channel.push(channel[next() as usize % channel.len()]);
            }
            for m in channel {
                let Message::FecShard { group, index, k, r, payload, .. } = m else {
                    panic!("all link traffic is coded here: {m:?}");
                };
                let mut inner = Vec::new();
                fec_rx.on_shard(*group, *index, *k, *r, payload, &mut inner);
                for tagged in inner {
                    if let Ok(Message::RelData { seq, payload, .. }) =
                        Message::decode_tagged(&tagged)
                    {
                        delivered.extend(arq_rx.on_data(seq, payload));
                    }
                }
            }
            // Lossless ack path: the lossy-ack case is ARQ's own property.
            if let Message::RelAck { cumulative, sack, .. } = arq_rx.make_ack() {
                arq_tx.on_ack(cumulative, sack);
            }
            now += ProtoDuration::from_millis(25);
            rounds += 1;
            prop_assert!(rounds < 4000, "must converge (FEC repair or ARQ fallback)");
        }
        prop_assert_eq!(delivered.len(), payload_count);
        for (i, p) in delivered.iter().enumerate() {
            let expected = vec![i as u8; 8];
            prop_assert_eq!(p.as_ref(), expected.as_slice(), "exactly once, in order");
        }
    }

    /// Fragmentation survives arbitrary permutations and duplication.
    #[test]
    fn fragments_reassemble_under_shuffle(
        payload in proptest::collection::vec(any::<u8>(), 0..6000),
        chunk in 1usize..999,
        shuffle in any::<prop::sample::Index>(),
        dup in any::<prop::sample::Index>(),
    ) {
        let frags = fragment_payload(1, &payload, chunk).unwrap();
        let mut order: Vec<usize> = (0..frags.len()).collect();
        // Rotate by a generated amount (cheap deterministic permutation).
        let rot = shuffle.index(frags.len().max(1));
        order.rotate_left(rot);
        // Inject one duplicate.
        order.push(dup.index(frags.len().max(1)).min(frags.len() - 1));

        let mut r = Reassembler::new(ProtoDuration::from_secs(5));
        let mut out = None;
        for i in order {
            if let Message::Fragment { msg_id, index, count, payload } = frags[i].clone() {
                if let Some(full) = r
                    .offer(NodeId(1), msg_id, index, count, payload, Micros::ZERO)
                    .unwrap()
                {
                    out = Some(full);
                }
            }
        }
        let got = out.unwrap();
        prop_assert_eq!(got.as_ref(), payload.as_slice());
    }

    /// Arbitrary bytes never panic the frame parser, and valid frames
    /// round-trip bit-exactly.
    #[test]
    fn frame_fuzz_and_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&bytes); // must not panic
        let frame = Frame::new(NodeId(1), marea_protocol::MessageKind::VarSample,
            Bytes::from(bytes.clone()));
        let wire = frame.encode();
        let back = Frame::decode(&wire).unwrap();
        prop_assert_eq!(back.payload(), bytes.as_slice());
    }

    /// Arbitrary bytes never panic the tagged-message parser.
    #[test]
    fn message_fuzz_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = Message::decode_tagged(&bytes);
    }

    /// A corrupted frame is always rejected (CRC) — flip any single bit.
    #[test]
    fn frame_single_bit_corruption_rejected(
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let frame = Frame::new(NodeId(7), marea_protocol::MessageKind::EventData,
            Bytes::from(payload));
        let mut wire = frame.encode().to_vec();
        let i = byte.index(wire.len());
        wire[i] ^= 1 << bit;
        prop_assert!(Frame::decode(&wire).is_err(), "bit flip at {}:{} accepted", i, bit);
    }
}
