//! The paper's Fig. 3 scenario, end to end: GPS → Mission Control →
//! Camera → {Storage, Video} → Ground Station, distributed over four
//! simulated nodes, exercising all four communication primitives.

use std::sync::Arc;

use parking_lot::Mutex;

use marea_core::{ContainerConfig, NodeId, SimHarness};
use marea_flightsim::{FlightPlan, GeoPoint, Terrain, Waypoint, World};
use marea_netsim::{LinkConfig, NetConfig};
use marea_services::{
    CameraService, GpsService, GroundStationService, MemFs, MissionControlService, StorageService,
    TelemetryBridge, VideoProcessingService,
};

const FCS_NODE: NodeId = NodeId(1);
const PAYLOAD_NODE: NodeId = NodeId(2);
const STORAGE_NODE: NodeId = NodeId(3);
const GROUND_NODE: NodeId = NodeId(4);

struct Mission {
    harness: SimHarness,
    fs: MemFs,
    display: Arc<Mutex<Vec<String>>>,
    telemetry: Arc<Mutex<Vec<String>>>,
    photo_waypoints: usize,
}

/// Builds the four-node mission of Fig. 3 over a deterministic terrain
/// guaranteed to put targets under the photo waypoints.
fn build_mission(seed: u64, loss: f64) -> Mission {
    let net = NetConfig::default()
        .with_seed(seed)
        .with_default_link(LinkConfig::default().with_loss(loss));
    let mut h = SimHarness::new(net);

    let origin = GeoPoint::new(41.275, 1.987, 120.0);
    let terrain = Terrain::new(seed, origin, 2000.0, 40);
    // Plan photo waypoints directly over the two targets closest to the
    // start, so detection ground truth is positive and the flight is short.
    let mut targets: Vec<_> = terrain.targets().to_vec();
    targets
        .sort_by(|a, b| origin.distance_m(&a.position).total_cmp(&origin.distance_m(&b.position)));
    let t0 = targets[0].position.at_alt(120.0);
    let t1 = targets[1].position.at_alt(120.0);
    let plan = FlightPlan::new(vec![
        Waypoint::photo(t0).with_radius_m(40.0),
        Waypoint::photo(t1).with_radius_m(40.0),
    ]);
    let photo_waypoints = plan.len();
    let world = Arc::new(Mutex::new(World::new(origin, 30.0, plan.clone(), terrain)));

    h.add_container(ContainerConfig::new("fcs", FCS_NODE));
    h.add_container(ContainerConfig::new("payload", PAYLOAD_NODE));
    h.add_container(ContainerConfig::new("storagebox", STORAGE_NODE));
    h.add_container(ContainerConfig::new("ground", GROUND_NODE));

    // Flight node: GPS + mission control.
    h.add_service(FCS_NODE, Box::new(GpsService::new(world.clone(), seed)));
    h.add_service(FCS_NODE, Box::new(MissionControlService::new(plan)));

    // Payload node: camera + video processing.
    h.add_service(PAYLOAD_NODE, Box::new(CameraService::new(world).with_resolution(128, 128)));
    h.add_service(PAYLOAD_NODE, Box::new(VideoProcessingService::new()));

    // Storage node.
    let fs = MemFs::new();
    h.add_service(STORAGE_NODE, Box::new(StorageService::new(fs.clone())));

    // Ground node: console + telemetry bridge.
    let display = Arc::new(Mutex::new(Vec::new()));
    h.add_service(GROUND_NODE, Box::new(GroundStationService::new(display.clone())));
    let telemetry = Arc::new(Mutex::new(Vec::new()));
    h.add_service(GROUND_NODE, Box::new(TelemetryBridge::new(telemetry.clone())));

    h.set_tick_us(2_000);
    h.start_all();
    Mission { harness: h, fs, display, telemetry, photo_waypoints }
}

#[test]
fn figure3_mission_runs_to_completion() {
    let mut m = build_mission(42, 0.0);
    // Up to ~2 simulated minutes of flight (30 m/s towards nearby targets).
    m.harness.run_for_millis(120_000);

    // Photos were taken at every photo waypoint and archived by storage
    // as distinct revisions of the photo resource.
    let stored = m.fs.list("photos/");
    assert_eq!(
        stored.len(),
        m.photo_waypoints,
        "one archived photo per photo waypoint: {stored:?}"
    );

    // Video processing saw the targets (waypoints sit on them).
    let console = m.display.lock().clone();
    let alerts = console.iter().filter(|l| l.contains("TARGET ALERT")).count();
    assert!(alerts >= 1, "at least one detection alert reached the operator: {console:?}");

    // Mission completion reached the ground station.
    assert!(
        console.iter().any(|l| l.contains("MISSION COMPLETE")),
        "mission completion displayed: {console:?}"
    );

    // Telemetry bridge produced FlightGear lines and valid NMEA.
    let telem = m.telemetry.lock().clone();
    assert!(telem.len() > 100, "steady telemetry stream");
    assert!(telem.iter().any(|l| l.starts_with("$GPGGA")));

    // The position variable flowed at high rate.
    let ground = m.harness.container(GROUND_NODE).unwrap();
    assert!(ground.stats().var_samples_delivered > 500, "{:?}", ground.stats());
}

#[test]
fn figure3_mission_survives_packet_loss() {
    let mut m = build_mission(43, 0.05);
    m.harness.run_for_millis(120_000);

    // Reliability-critical paths still complete under 5% loss:
    let stored = m.fs.list("photos/");
    assert_eq!(stored.len(), m.photo_waypoints, "photos archived despite loss: {stored:?}");
    let console = m.display.lock().clone();
    assert!(console.iter().any(|l| l.contains("MISSION COMPLETE")), "{console:?}");

    // The LAN really did drop traffic (the retransmission machinery itself
    // is covered deterministically by the core and protocol suites).
    assert!(m.harness.network().stats().dropped_loss > 100, "the 5% loss was real");
}

#[test]
fn photos_are_decodable_frames_with_targets() {
    let mut m = build_mission(44, 0.0);
    m.harness.run_for_millis(120_000);
    let stored = m.fs.list("photos/");
    assert!(!stored.is_empty());
    for path in stored {
        let bytes = m.fs.read(&path).unwrap();
        let frame = marea_flightsim::Frame::from_bytes(&bytes).expect("stored photo is a frame");
        assert_eq!(frame.width, 128);
        let blobs = marea_services::detect::detect_blobs(&frame, 200, 4);
        assert!(!blobs.is_empty(), "{path} contains the planned target");
    }
}

#[test]
fn mission_status_variable_reaches_ground_with_initial_value() {
    let mut m = build_mission(45, 0.0);
    m.harness.run_for_millis(20_000);
    let console = m.display.lock().clone();
    assert!(
        console.iter().any(|l| l.contains("mission status")),
        "mc/status displayed (initial value or update): {console:?}"
    );
}
