//! FlightGear-style telemetry bridge.
//!
//! Paper §6 uses a telemetry bridge as its productivity yardstick: *"the
//! telemetry interface with FlightGear simulator has been done by a person
//! without previous knowledge of the architecture in only 2 days."* This
//! service is that artifact, built purely on the public service API: it
//! consumes the position variable and re-publishes FlightGear
//! generic-protocol CSV lines (`lat,lon,alt_ft,heading_deg,speed_kt`)
//! plus NMEA `GPGGA` sentences for conventional ground tools.

use std::sync::Arc;

use parking_lot::Mutex;

use marea_core::{
    Micros, ProtoDuration, Service, ServiceContext, ServiceDescriptor, VarPort, VarQos,
};
use marea_presentation::{Name, Value};

use crate::names::{self, Position};

/// Captured telemetry output (shareable, for tests and consoles).
pub type TelemetryLog = Arc<Mutex<Vec<String>>>;

/// Formats `gps/position` into FlightGear CSV and NMEA sentences.
#[derive(Debug)]
pub struct TelemetryBridge {
    sink: TelemetryLog,
    lines_emitted: u64,
    telemetry: VarPort<String>,
    position: VarPort<Position>,
}

impl TelemetryBridge {
    /// Creates a bridge writing formatted lines into `sink`.
    pub fn new(sink: TelemetryLog) -> Self {
        TelemetryBridge {
            sink,
            lines_emitted: 0,
            telemetry: names::telemetry_port(),
            position: names::position_port(),
        }
    }

    /// Formats one FlightGear generic-protocol line.
    fn fg_line(lat: f64, lon: f64, alt_m: f64, heading_rad: f64, speed_mps: f64) -> String {
        format!(
            "{lat:.6},{lon:.6},{:.1},{:.1},{:.1}",
            alt_m * 3.28084,          // feet
            heading_rad.to_degrees(), // degrees
            speed_mps * 1.94384,      // knots
        )
    }

    /// Formats a minimal NMEA GPGGA sentence with checksum.
    fn gpgga(lat: f64, lon: f64, alt_m: f64) -> String {
        let lat_hemi = if lat >= 0.0 { 'N' } else { 'S' };
        let lon_hemi = if lon >= 0.0 { 'E' } else { 'W' };
        let lat = lat.abs();
        let lon = lon.abs();
        let lat_str = format!("{:02}{:07.4}", lat.trunc() as u32, lat.fract() * 60.0);
        let lon_str = format!("{:03}{:07.4}", lon.trunc() as u32, lon.fract() * 60.0);
        let body = format!(
            "GPGGA,000000.00,{lat_str},{lat_hemi},{lon_str},{lon_hemi},1,08,1.0,{alt_m:.1},M,0.0,M,,"
        );
        let checksum = body.bytes().fold(0u8, |acc, b| acc ^ b);
        format!("${body}*{checksum:02X}")
    }
}

impl Service for TelemetryBridge {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("telemetry")
            .provides_var(
                &self.telemetry,
                VarQos::periodic(ProtoDuration::from_millis(200), ProtoDuration::from_secs(1)),
            )
            .subscribe_to_var(&self.position, VarQos::default().with_initial())
            .build()
    }

    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        if !self.position.matches(name) {
            return;
        }
        let Ok(Position { lat, lon, alt, heading, speed }) = self.position.decode(value) else {
            return;
        };
        let fg = Self::fg_line(lat, lon, alt, heading, speed);
        let nmea = Self::gpgga(lat, lon, alt);
        ctx.publish_to(&self.telemetry, fg.clone());
        self.lines_emitted += 1;
        let mut sink = self.sink.lock();
        sink.push(fg);
        sink.push(nmea);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fg_line_uses_aviation_units() {
        let line =
            TelemetryBridge::fg_line(41.275, 1.987, 100.0, std::f64::consts::FRAC_PI_2, 20.0);
        let parts: Vec<&str> = line.split(',').collect();
        assert_eq!(parts.len(), 5);
        assert_eq!(parts[0], "41.275000");
        assert_eq!(parts[2], "328.1", "metres to feet");
        assert_eq!(parts[3], "90.0", "radians to degrees");
        assert_eq!(parts[4], "38.9", "m/s to knots");
    }

    #[test]
    fn gpgga_checksum_is_correct() {
        let s = TelemetryBridge::gpgga(41.275, 1.987, 100.0);
        assert!(s.starts_with("$GPGGA,"));
        let (body, checksum) = s[1..].split_once('*').unwrap();
        let computed = body.bytes().fold(0u8, |acc, b| acc ^ b);
        assert_eq!(format!("{computed:02X}"), checksum);
        assert!(s.contains(",N,"), "northern hemisphere");
        assert!(s.contains(",E,"), "eastern hemisphere");
    }

    #[test]
    fn southern_western_hemispheres() {
        let s = TelemetryBridge::gpgga(-33.9, -70.8, 500.0);
        assert!(s.contains(",S,"));
        assert!(s.contains(",W,"));
    }
}
