//! # marea-services — reusable avionics services
//!
//! The paper's application example (§5, Fig. 3) is an image-acquisition
//! mission run by generic, reusable services. This crate implements that
//! cast on top of the [`marea_core`] service API:
//!
//! * [`GpsService`] — publishes the `gps/position` variable at 20 Hz from
//!   the simulated airframe ("the starting service is the GPS which
//!   generates the position variable");
//! * [`MissionControlService`] — follows the flight plan, emits
//!   `mc/photo-request` events at photo waypoints, initializes the payload
//!   services through remote calls;
//! * [`CameraService`] — exposes `camera/prepare`, answers photo-request
//!   events by rendering a frame and distributing it as revisions of the
//!   `camera/photo` file resource;
//! * [`StorageService`] — a generic storage service over an in-memory
//!   [`MemFs`]; stores photos and serves `storage/*` functions;
//! * [`VideoProcessingService`] — detects bright targets in received
//!   frames and emits `video/target-detected`;
//! * [`GroundStationService`] — "basically shows the subscribed variables
//!   and events in a terminal";
//! * [`TelemetryBridge`] — the FlightGear-style telemetry formatter of §6.
//!
//! All inter-service names and schemas live in [`names`] so missions can
//! recombine services freely — the reuse the paper sells.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod camera;
pub mod detect;
mod fs;
mod gps;
mod ground;
mod mission;
pub mod names;
mod storage;
mod telemetry;
mod video;

pub use camera::CameraService;
pub use fs::MemFs;
pub use gps::{GpsService, SharedWorld};
pub use ground::GroundStationService;
pub use mission::MissionControlService;
pub use storage::StorageService;
pub use telemetry::TelemetryBridge;
pub use video::VideoProcessingService;
