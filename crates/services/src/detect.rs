//! Target detection: thresholded connected-component labelling.
//!
//! The paper's scenario processes photos "in an on-board FPGA based
//! system" to "detect specific characteristics on the image". This is the
//! software substitute: 4-connected blob extraction above a brightness
//! threshold — enough to find the synthetic terrain's hot targets and
//! drive the `video/target-detected` event path with verifiable ground
//! truth.

use marea_flightsim::Frame;

/// One detected bright region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Blob {
    /// Centroid in pixel coordinates `(x, y)`.
    pub centroid_px: (f32, f32),
    /// Number of pixels in the region.
    pub pixels: u32,
}

/// Finds 4-connected regions of pixels brighter than `threshold` with at
/// least `min_pixels` members, largest first.
///
/// # Examples
///
/// ```
/// use marea_flightsim::{Frame};
/// use marea_services::detect::detect_blobs;
///
/// // A 4x4 frame with one 2x2 bright square.
/// let mut pixels = vec![0u8; 16];
/// for (x, y) in [(1, 1), (2, 1), (1, 2), (2, 2)] {
///     pixels[y * 4 + x] = 255;
/// }
/// let frame = Frame { width: 4, height: 4, m_per_px: 1.0, pixels };
/// let blobs = detect_blobs(&frame, 200, 2);
/// assert_eq!(blobs.len(), 1);
/// assert_eq!(blobs[0].pixels, 4);
/// ```
pub fn detect_blobs(frame: &Frame, threshold: u8, min_pixels: u32) -> Vec<Blob> {
    let w = frame.width as usize;
    let h = frame.height as usize;
    let mut visited = vec![false; w * h];
    let mut blobs = Vec::new();
    let mut stack = Vec::new();
    for start in 0..w * h {
        if visited[start] || frame.pixels[start] < threshold {
            continue;
        }
        // Flood fill.
        let mut count: u32 = 0;
        let mut sum_x: u64 = 0;
        let mut sum_y: u64 = 0;
        stack.push(start);
        visited[start] = true;
        while let Some(i) = stack.pop() {
            count += 1;
            let (x, y) = (i % w, i / w);
            sum_x += x as u64;
            sum_y += y as u64;
            let mut try_push = |j: usize| {
                if !visited[j] && frame.pixels[j] >= threshold {
                    visited[j] = true;
                    stack.push(j);
                }
            };
            if x > 0 {
                try_push(i - 1);
            }
            if x + 1 < w {
                try_push(i + 1);
            }
            if y > 0 {
                try_push(i - w);
            }
            if y + 1 < h {
                try_push(i + w);
            }
        }
        if count >= min_pixels {
            blobs.push(Blob {
                centroid_px: (sum_x as f32 / count as f32, sum_y as f32 / count as f32),
                pixels: count,
            });
        }
    }
    blobs.sort_by_key(|b| std::cmp::Reverse(b.pixels));
    blobs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(w: u32, h: u32, lit: &[(u32, u32)]) -> Frame {
        let mut pixels = vec![10u8; (w * h) as usize];
        for &(x, y) in lit {
            pixels[(y * w + x) as usize] = 250;
        }
        Frame { width: w, height: h, m_per_px: 1.0, pixels }
    }

    #[test]
    fn separate_blobs_are_distinguished() {
        let f = frame(8, 8, &[(0, 0), (1, 0), (6, 6), (7, 6), (6, 7), (7, 7)]);
        let blobs = detect_blobs(&f, 200, 1);
        assert_eq!(blobs.len(), 2);
        assert_eq!(blobs[0].pixels, 4, "largest first");
        assert_eq!(blobs[1].pixels, 2);
    }

    #[test]
    fn diagonal_pixels_are_not_connected() {
        let f = frame(4, 4, &[(0, 0), (1, 1)]);
        let blobs = detect_blobs(&f, 200, 1);
        assert_eq!(blobs.len(), 2, "4-connectivity");
    }

    #[test]
    fn min_pixels_filters_noise() {
        let f = frame(8, 8, &[(0, 0), (3, 3), (3, 4), (4, 3), (4, 4)]);
        let blobs = detect_blobs(&f, 200, 3);
        assert_eq!(blobs.len(), 1);
        assert_eq!(blobs[0].pixels, 4);
    }

    #[test]
    fn centroid_is_geometric_centre() {
        let f = frame(8, 8, &[(2, 2), (3, 2), (2, 3), (3, 3)]);
        let blobs = detect_blobs(&f, 200, 1);
        assert_eq!(blobs[0].centroid_px, (2.5, 2.5));
    }

    #[test]
    fn empty_and_dark_frames_yield_nothing() {
        let f = frame(8, 8, &[]);
        assert!(detect_blobs(&f, 200, 1).is_empty());
    }

    #[test]
    fn detects_rendered_terrain_targets() {
        use marea_flightsim::{GeoPoint, Terrain};
        let origin = GeoPoint::new(41.275, 1.987, 0.0);
        let terrain = Terrain::new(11, origin, 400.0, 6);
        let target = terrain.targets()[0];
        let f = terrain.render(target.position, 128, 128, 1.0);
        let blobs = detect_blobs(&f, 200, 4);
        assert!(!blobs.is_empty(), "target under the camera is detected");
        // A frame far away from every target sees nothing.
        let empty = terrain.render(origin.displaced_m(-50_000.0, -50_000.0), 128, 128, 1.0);
        assert!(detect_blobs(&empty, 200, 4).is_empty());
    }
}
