//! The on-board video processing service.

use marea_core::{EventPort, FileEvent, Service, ServiceContext, ServiceDescriptor};
use marea_flightsim::Frame;

use crate::detect::detect_blobs;
use crate::names::{self, Detection};

/// Runs target detection on every photo revision it receives and emits
/// `video/target-detected` when something is found.
///
/// > *"At the same time, the video processing module is told to process the
/// > same file resource ... If the video process detects the pre-programmed
/// > characteristics in the image it can notify the GS and MC."* — paper §5
#[derive(Debug)]
pub struct VideoProcessingService {
    threshold: u8,
    min_pixels: u32,
    frames_processed: u32,
    detections: u32,
    target_detected: EventPort<Detection>,
}

impl VideoProcessingService {
    /// Creates a detector with the default tuning for the synthetic
    /// terrain's hot targets.
    pub fn new() -> Self {
        VideoProcessingService {
            threshold: 200,
            min_pixels: 4,
            frames_processed: 0,
            detections: 0,
            target_detected: names::target_detected_port(),
        }
    }

    /// Overrides detection tuning (builder style).
    #[must_use]
    pub fn with_tuning(mut self, threshold: u8, min_pixels: u32) -> Self {
        self.threshold = threshold;
        self.min_pixels = min_pixels;
        self
    }

    /// Frames processed so far.
    pub fn frames_processed(&self) -> u32 {
        self.frames_processed
    }
}

impl Default for VideoProcessingService {
    fn default() -> Self {
        VideoProcessingService::new()
    }
}

impl Service for VideoProcessingService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("video")
            .provides_event(&self.target_detected)
            .subscribe_file(names::FILE_PHOTO)
            .build()
    }

    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, event: &FileEvent) {
        let FileEvent::Received { resource, revision, data } = event else { return };
        let Some(frame) = Frame::from_bytes(data) else {
            ctx.log(format!("video: `{resource}` rev {revision} is not a frame; skipped"));
            return;
        };
        self.frames_processed += 1;
        let blobs = detect_blobs(&frame, self.threshold, self.min_pixels);
        ctx.log(format!("video: rev {} processed, {} target(s) found", revision, blobs.len()));
        if !blobs.is_empty() {
            self.detections += 1;
            ctx.emit_to(
                &self.target_detected,
                Detection { revision: *revision, count: blobs.len() as u32 },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_subscribes_to_photos() {
        let v = VideoProcessingService::new().with_tuning(180, 2);
        let d = v.descriptor();
        assert!(d.file_interests().iter().any(|i| i == names::FILE_PHOTO));
        assert!(d.provides().iter().any(|p| p.name() == names::EVT_TARGET_DETECTED));
        assert_eq!(v.frames_processed(), 0);
    }
}
