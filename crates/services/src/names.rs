//! The mission vocabulary: names, schemas and **typed ports** shared by
//! the standard services.
//!
//! Keeping the contract here (instead of inside each service) is what lets
//! "all the services \[be\] generic enough to be reutilized in most of the
//! UAV missions" (paper §5) — a mission recombines services purely by
//! name. The typed port constructors make that contract compile-time
//! checked on *both* sides: the producer declares through the same port
//! the consumers subscribe and decode through, so a schema change is a
//! type error in every service it affects.

use marea_core::{EventPort, FnPort, VarPort};
use marea_presentation::{
    DataType, FromValue, HasDataType, IntoValue, StructType, TypeMismatch, Value,
};

/// `gps/position` — the high-rate position variable (paper §5).
pub const VAR_POSITION: &str = "gps/position";
/// `gps/fix-lost` — bare event emitted when the receiver loses its fix.
pub const EVT_FIX_LOST: &str = "gps/fix-lost";
/// `mc/status` — mission progress variable.
pub const VAR_MC_STATUS: &str = "mc/status";
/// `mc/photo-request` — event carrying the waypoint index to photograph.
pub const EVT_PHOTO_REQUEST: &str = "mc/photo-request";
/// `mc/mission-complete` — bare event at end of plan.
pub const EVT_MISSION_COMPLETE: &str = "mc/mission-complete";
/// `mc/target-alert` — relayed detection alert for the ground station.
pub const EVT_TARGET_ALERT: &str = "mc/target-alert";
/// `camera/prepare` — remote function arming the camera.
pub const FN_CAMERA_PREPARE: &str = "camera/prepare";
/// `camera/photo` — the file resource carrying photos (one revision per
/// shot).
pub const FILE_PHOTO: &str = "camera/photo";
/// `camera/photo-taken` — event carrying the new photo revision.
pub const EVT_PHOTO_TAKEN: &str = "camera/photo-taken";
/// `storage/store` — remote function storing a named blob.
pub const FN_STORAGE_STORE: &str = "storage/store";
/// `storage/get` — remote function fetching a named blob.
pub const FN_STORAGE_GET: &str = "storage/get";
/// `storage/list` — remote function listing stored paths.
pub const FN_STORAGE_LIST: &str = "storage/list";
/// `video/target-detected` — event carrying detection results.
pub const EVT_TARGET_DETECTED: &str = "video/target-detected";
/// `telemetry/fg` — FlightGear-style telemetry line variable.
pub const VAR_TELEMETRY: &str = "telemetry/fg";

// ---- typed records ------------------------------------------------------

/// A GPS fix: the payload of [`VAR_POSITION`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Latitude in degrees.
    pub lat: f64,
    /// Longitude in degrees.
    pub lon: f64,
    /// Altitude in metres.
    pub alt: f64,
    /// Course over ground in radians.
    pub heading: f64,
    /// Ground speed in m/s.
    pub speed: f64,
}

impl HasDataType for Position {
    fn data_type() -> DataType {
        DataType::Struct(
            StructType::new("Position")
                .with_field("lat", DataType::F64)
                .expect("literal")
                .with_field("lon", DataType::F64)
                .expect("literal")
                .with_field("alt", DataType::F64)
                .expect("literal")
                .with_field("heading", DataType::F64)
                .expect("literal")
                .with_field("speed", DataType::F64)
                .expect("literal"),
        )
    }
}

impl IntoValue for Position {
    fn into_value(self) -> Value {
        Value::struct_of("Position")
            .field("lat", self.lat)
            .field("lon", self.lon)
            .field("alt", self.alt)
            .field("heading", self.heading)
            .field("speed", self.speed)
            .build()
            .expect("literal field names")
    }
}

impl FromValue for Position {
    fn from_value(value: &Value) -> Result<Self, TypeMismatch> {
        let field = |name: &str| -> Result<f64, TypeMismatch> {
            value.at(name).and_then(Value::as_f64).ok_or_else(|| {
                TypeMismatch::new(Self::data_type(), value.kind())
                    .with_detail(format!("field `{name}`"))
            })
        };
        Ok(Position {
            lat: field("lat")?,
            lon: field("lon")?,
            alt: field("alt")?,
            heading: field("heading")?,
            speed: field("speed")?,
        })
    }
}

/// A detection report: the payload of [`EVT_TARGET_DETECTED`] and
/// [`EVT_TARGET_ALERT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Detection {
    /// Photo revision the detection ran on.
    pub revision: u32,
    /// Number of targets found.
    pub count: u32,
}

impl HasDataType for Detection {
    fn data_type() -> DataType {
        DataType::Struct(
            StructType::new("Detection")
                .with_field("revision", DataType::U32)
                .expect("literal")
                .with_field("count", DataType::U32)
                .expect("literal"),
        )
    }
}

impl IntoValue for Detection {
    fn into_value(self) -> Value {
        Value::struct_of("Detection")
            .field("revision", self.revision)
            .field("count", self.count)
            .build()
            .expect("literal field names")
    }
}

impl FromValue for Detection {
    fn from_value(value: &Value) -> Result<Self, TypeMismatch> {
        let field = |name: &str| -> Result<u32, TypeMismatch> {
            match value.at(name) {
                Some(Value::U32(v)) => Ok(*v),
                _ => Err(TypeMismatch::new(Self::data_type(), value.kind())
                    .with_detail(format!("field `{name}`"))),
            }
        };
        Ok(Detection { revision: field("revision")?, count: field("count")? })
    }
}

/// Mission progress: the payload of [`VAR_MC_STATUS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct McStatus {
    /// Index of the next waypoint to reach.
    pub next_waypoint: u32,
    /// Photos requested so far.
    pub photos: u32,
    /// The plan is exhausted.
    pub complete: bool,
}

impl HasDataType for McStatus {
    fn data_type() -> DataType {
        DataType::Struct(
            StructType::new("McStatus")
                .with_field("next_waypoint", DataType::U32)
                .expect("literal")
                .with_field("photos", DataType::U32)
                .expect("literal")
                .with_field("complete", DataType::Bool)
                .expect("literal"),
        )
    }
}

impl IntoValue for McStatus {
    fn into_value(self) -> Value {
        Value::struct_of("McStatus")
            .field("next_waypoint", self.next_waypoint)
            .field("photos", self.photos)
            .field("complete", self.complete)
            .build()
            .expect("literal field names")
    }
}

impl FromValue for McStatus {
    fn from_value(value: &Value) -> Result<Self, TypeMismatch> {
        let mismatch = |detail: &str| {
            TypeMismatch::new(Self::data_type(), value.kind()).with_detail(detail.to_owned())
        };
        let u32_field = |name: &str| match value.at(name) {
            Some(Value::U32(v)) => Ok(*v),
            _ => Err(mismatch(&format!("field `{name}`"))),
        };
        Ok(McStatus {
            next_waypoint: u32_field("next_waypoint")?,
            photos: u32_field("photos")?,
            complete: value
                .at("complete")
                .and_then(Value::as_bool)
                .ok_or_else(|| mismatch("field `complete`"))?,
        })
    }
}

// ---- typed ports --------------------------------------------------------

/// Typed port for [`VAR_POSITION`].
pub fn position_port() -> VarPort<Position> {
    VarPort::new(VAR_POSITION)
}

/// Typed port for [`EVT_FIX_LOST`] (bare).
pub fn fix_lost_port() -> EventPort<()> {
    EventPort::new(EVT_FIX_LOST)
}

/// Typed port for [`VAR_MC_STATUS`].
pub fn mc_status_port() -> VarPort<McStatus> {
    VarPort::new(VAR_MC_STATUS)
}

/// Typed port for [`EVT_PHOTO_REQUEST`] (payload: waypoint index).
pub fn photo_request_port() -> EventPort<u32> {
    EventPort::new(EVT_PHOTO_REQUEST)
}

/// Typed port for [`EVT_MISSION_COMPLETE`] (bare).
pub fn mission_complete_port() -> EventPort<()> {
    EventPort::new(EVT_MISSION_COMPLETE)
}

/// Typed port for [`EVT_TARGET_ALERT`].
pub fn target_alert_port() -> EventPort<Detection> {
    EventPort::new(EVT_TARGET_ALERT)
}

/// Typed port for [`FN_CAMERA_PREPARE`]: `(mission name) -> armed`.
pub fn camera_prepare_port() -> FnPort<(String,), bool> {
    FnPort::new(FN_CAMERA_PREPARE)
}

/// Typed port for [`EVT_PHOTO_TAKEN`] (payload: shot number).
pub fn photo_taken_port() -> EventPort<u32> {
    EventPort::new(EVT_PHOTO_TAKEN)
}

/// Typed port for [`FN_STORAGE_STORE`]: `(path, data) -> stored`.
pub fn storage_store_port() -> FnPort<(String, Vec<u8>), bool> {
    FnPort::new(FN_STORAGE_STORE)
}

/// Typed port for [`FN_STORAGE_GET`]: `(path) -> data`.
pub fn storage_get_port() -> FnPort<(String,), Vec<u8>> {
    FnPort::new(FN_STORAGE_GET)
}

/// Typed port for [`FN_STORAGE_LIST`]: `(prefix) -> newline-joined paths`.
pub fn storage_list_port() -> FnPort<(String,), String> {
    FnPort::new(FN_STORAGE_LIST)
}

/// Typed port for [`EVT_TARGET_DETECTED`].
pub fn target_detected_port() -> EventPort<Detection> {
    EventPort::new(EVT_TARGET_DETECTED)
}

/// Typed port for [`VAR_TELEMETRY`].
pub fn telemetry_port() -> VarPort<String> {
    VarPort::new(VAR_TELEMETRY)
}

// ---- dynamic compatibility helpers --------------------------------------

/// Schema of [`VAR_POSITION`] (prefer [`Position`]'s
/// [`HasDataType`] impl).
pub fn position_type() -> DataType {
    Position::data_type()
}

/// Builds a [`VAR_POSITION`] sample (prefer constructing a [`Position`]).
pub fn position_value(lat: f64, lon: f64, alt: f64, heading: f64, speed: f64) -> Value {
    Position { lat, lon, alt, heading, speed }.into_value()
}

/// Parses a [`VAR_POSITION`] sample into `(lat, lon, alt, heading, speed)`
/// (prefer [`Position::from_value`]).
pub fn parse_position(v: &Value) -> Option<(f64, f64, f64, f64, f64)> {
    Position::from_value(v).ok().map(|p| (p.lat, p.lon, p.alt, p.heading, p.speed))
}

/// Schema of [`EVT_TARGET_DETECTED`] / [`EVT_TARGET_ALERT`] payloads
/// (prefer [`Detection`]).
pub fn detection_type() -> DataType {
    Detection::data_type()
}

/// Builds a detection payload (prefer constructing a [`Detection`]).
pub fn detection_value(revision: u32, count: u32) -> Value {
    Detection { revision, count }.into_value()
}

/// Parses a detection payload into `(revision, count)` (prefer
/// [`Detection::from_value`]).
pub fn parse_detection(v: &Value) -> Option<(u32, u32)> {
    Detection::from_value(v).ok().map(|d| (d.revision, d.count))
}

/// Schema of [`VAR_MC_STATUS`] (prefer [`McStatus`]).
pub fn mc_status_type() -> DataType {
    McStatus::data_type()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_roundtrip() {
        let p = Position { lat: 41.2, lon: 1.9, alt: 120.0, heading: 1.5, speed: 22.0 };
        let v = p.into_value();
        v.conforms_to(&Position::data_type()).unwrap();
        assert_eq!(Position::from_value(&v).unwrap(), p);
        assert_eq!(parse_position(&v), Some((41.2, 1.9, 120.0, 1.5, 22.0)));
    }

    #[test]
    fn detection_roundtrip() {
        let d = Detection { revision: 3, count: 2 };
        let v = d.into_value();
        v.conforms_to(&Detection::data_type()).unwrap();
        assert_eq!(Detection::from_value(&v).unwrap(), d);
        assert_eq!(parse_detection(&v), Some((3, 2)));
    }

    #[test]
    fn mc_status_roundtrip() {
        let s = McStatus { next_waypoint: 4, photos: 2, complete: false };
        let v = s.into_value();
        v.conforms_to(&McStatus::data_type()).unwrap();
        assert_eq!(McStatus::from_value(&v).unwrap(), s);
    }

    #[test]
    fn parse_rejects_wrong_shapes() {
        assert!(Position::from_value(&Value::Bool(true)).is_err());
        assert!(parse_position(&Value::Bool(true)).is_none());
        let pos = Position::default().into_value();
        let err = Detection::from_value(&pos).unwrap_err();
        assert!(err.to_string().contains("revision"), "{err}");
    }

    #[test]
    fn ports_match_declared_names() {
        assert_eq!(position_port().name(), VAR_POSITION);
        assert_eq!(camera_prepare_port().name(), FN_CAMERA_PREPARE);
        assert_eq!(storage_store_port().name(), FN_STORAGE_STORE);
        assert_eq!(target_detected_port().name(), EVT_TARGET_DETECTED);
        assert_eq!(telemetry_port().name(), VAR_TELEMETRY);
    }

    #[test]
    fn typed_schema_matches_legacy_schema() {
        // The typed ports must stay wire-compatible with the historical
        // dynamic declarations.
        assert_eq!(position_type(), Position::data_type());
        assert_eq!(detection_type(), Detection::data_type());
        assert_eq!(mc_status_type(), McStatus::data_type());
    }
}
