//! The mission vocabulary: names and schemas shared by the standard
//! services.
//!
//! Keeping the contract here (instead of inside each service) is what lets
//! "all the services \[be\] generic enough to be reutilized in most of the
//! UAV missions" (paper §5) — a mission recombines services purely by
//! name.

use marea_presentation::{DataType, StructType, Value};

/// `gps/position` — the high-rate position variable (paper §5).
pub const VAR_POSITION: &str = "gps/position";
/// `gps/fix-lost` — bare event emitted when the receiver loses its fix.
pub const EVT_FIX_LOST: &str = "gps/fix-lost";
/// `mc/status` — mission progress variable.
pub const VAR_MC_STATUS: &str = "mc/status";
/// `mc/photo-request` — event carrying the waypoint index to photograph.
pub const EVT_PHOTO_REQUEST: &str = "mc/photo-request";
/// `mc/mission-complete` — bare event at end of plan.
pub const EVT_MISSION_COMPLETE: &str = "mc/mission-complete";
/// `mc/target-alert` — relayed detection alert for the ground station.
pub const EVT_TARGET_ALERT: &str = "mc/target-alert";
/// `camera/prepare` — remote function arming the camera.
pub const FN_CAMERA_PREPARE: &str = "camera/prepare";
/// `camera/photo` — the file resource carrying photos (one revision per
/// shot).
pub const FILE_PHOTO: &str = "camera/photo";
/// `camera/photo-taken` — event carrying the new photo revision.
pub const EVT_PHOTO_TAKEN: &str = "camera/photo-taken";
/// `storage/store` — remote function storing a named blob.
pub const FN_STORAGE_STORE: &str = "storage/store";
/// `storage/get` — remote function fetching a named blob.
pub const FN_STORAGE_GET: &str = "storage/get";
/// `storage/list` — remote function listing stored paths.
pub const FN_STORAGE_LIST: &str = "storage/list";
/// `video/target-detected` — event carrying detection results.
pub const EVT_TARGET_DETECTED: &str = "video/target-detected";
/// `telemetry/fg` — FlightGear-style telemetry line variable.
pub const VAR_TELEMETRY: &str = "telemetry/fg";

/// Schema of [`VAR_POSITION`].
pub fn position_type() -> DataType {
    DataType::Struct(
        StructType::new("Position")
            .with_field("lat", DataType::F64)
            .expect("literal")
            .with_field("lon", DataType::F64)
            .expect("literal")
            .with_field("alt", DataType::F64)
            .expect("literal")
            .with_field("heading", DataType::F64)
            .expect("literal")
            .with_field("speed", DataType::F64)
            .expect("literal"),
    )
}

/// Builds a [`VAR_POSITION`] sample.
pub fn position_value(lat: f64, lon: f64, alt: f64, heading: f64, speed: f64) -> Value {
    Value::struct_of("Position")
        .field("lat", lat)
        .field("lon", lon)
        .field("alt", alt)
        .field("heading", heading)
        .field("speed", speed)
        .build()
        .expect("literal field names")
}

/// Parses a [`VAR_POSITION`] sample into `(lat, lon, alt, heading, speed)`.
pub fn parse_position(v: &Value) -> Option<(f64, f64, f64, f64, f64)> {
    Some((
        v.at("lat")?.as_f64()?,
        v.at("lon")?.as_f64()?,
        v.at("alt")?.as_f64()?,
        v.at("heading")?.as_f64()?,
        v.at("speed")?.as_f64()?,
    ))
}

/// Schema of [`EVT_TARGET_DETECTED`] / [`EVT_TARGET_ALERT`] payloads.
pub fn detection_type() -> DataType {
    DataType::Struct(
        StructType::new("Detection")
            .with_field("revision", DataType::U32)
            .expect("literal")
            .with_field("count", DataType::U32)
            .expect("literal"),
    )
}

/// Builds a detection payload.
pub fn detection_value(revision: u32, count: u32) -> Value {
    Value::struct_of("Detection")
        .field("revision", revision)
        .field("count", count)
        .build()
        .expect("literal field names")
}

/// Parses a detection payload into `(revision, count)`.
pub fn parse_detection(v: &Value) -> Option<(u32, u32)> {
    Some((v.at("revision")?.as_u64()? as u32, v.at("count")?.as_u64()? as u32))
}

/// Schema of [`VAR_MC_STATUS`].
pub fn mc_status_type() -> DataType {
    DataType::Struct(
        StructType::new("McStatus")
            .with_field("next_waypoint", DataType::U32)
            .expect("literal")
            .with_field("photos", DataType::U32)
            .expect("literal")
            .with_field("complete", DataType::Bool)
            .expect("literal"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn position_roundtrip() {
        let v = position_value(41.2, 1.9, 120.0, 1.5, 22.0);
        v.conforms_to(&position_type()).unwrap();
        assert_eq!(parse_position(&v), Some((41.2, 1.9, 120.0, 1.5, 22.0)));
    }

    #[test]
    fn detection_roundtrip() {
        let v = detection_value(3, 2);
        v.conforms_to(&detection_type()).unwrap();
        assert_eq!(parse_detection(&v), Some((3, 2)));
    }

    #[test]
    fn parse_rejects_wrong_shapes() {
        assert!(parse_position(&Value::Bool(true)).is_none());
        assert!(parse_detection(&position_value(0.0, 0.0, 0.0, 0.0, 0.0)).is_none());
    }
}
