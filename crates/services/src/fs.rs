//! The in-memory filesystem substrate behind the storage service.
//!
//! Paper §5: *"The storage service is a generic service that provides
//! storage and retrieval of data by providing access to an inner file
//! system."* A real deployment would mount flash storage; the reproduction
//! substitutes a process-local namespace with the same observable
//! behaviour (paths, overwrite semantics, listings).

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

#[derive(Debug, Default)]
struct MemFsInner {
    files: BTreeMap<String, Bytes>,
    writes: u64,
}

/// A shareable in-memory filesystem. Cloning shares the same namespace, so
/// tests can inspect what a [`StorageService`](crate::StorageService)
/// persisted.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    inner: Arc<Mutex<MemFsInner>>,
}

impl MemFs {
    /// Creates an empty filesystem.
    pub fn new() -> Self {
        MemFs::default()
    }

    /// Writes (or overwrites) a file.
    pub fn write(&self, path: impl Into<String>, data: Bytes) {
        let mut inner = self.inner.lock();
        inner.files.insert(path.into(), data);
        inner.writes += 1;
    }

    /// Reads a file.
    pub fn read(&self, path: &str) -> Option<Bytes> {
        self.inner.lock().files.get(path).cloned()
    }

    /// Removes a file, returning its content.
    pub fn remove(&self, path: &str) -> Option<Bytes> {
        self.inner.lock().files.remove(path)
    }

    /// Paths starting with `prefix`, sorted.
    pub fn list(&self, prefix: &str) -> Vec<String> {
        self.inner.lock().files.keys().filter(|p| p.starts_with(prefix)).cloned().collect()
    }

    /// Number of stored files.
    pub fn len(&self) -> usize {
        self.inner.lock().files.len()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.inner.lock().files.values().map(|b| b.len()).sum()
    }

    /// Number of write operations performed.
    pub fn write_count(&self) -> u64 {
        self.inner.lock().writes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_remove() {
        let fs = MemFs::new();
        assert!(fs.is_empty());
        fs.write("photos/img-1", Bytes::from_static(b"abc"));
        assert_eq!(fs.read("photos/img-1").unwrap().as_ref(), b"abc");
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.total_bytes(), 3);
        assert_eq!(fs.remove("photos/img-1").unwrap().as_ref(), b"abc");
        assert!(fs.read("photos/img-1").is_none());
    }

    #[test]
    fn overwrite_replaces_and_counts() {
        let fs = MemFs::new();
        fs.write("x", Bytes::from_static(b"1"));
        fs.write("x", Bytes::from_static(b"22"));
        assert_eq!(fs.len(), 1);
        assert_eq!(fs.total_bytes(), 2);
        assert_eq!(fs.write_count(), 2);
    }

    #[test]
    fn listing_is_sorted_and_prefixed() {
        let fs = MemFs::new();
        fs.write("b/2", Bytes::new());
        fs.write("a/1", Bytes::new());
        fs.write("b/1", Bytes::new());
        assert_eq!(fs.list(""), vec!["a/1", "b/1", "b/2"]);
        assert_eq!(fs.list("b/"), vec!["b/1", "b/2"]);
        assert!(fs.list("zzz").is_empty());
    }

    #[test]
    fn clones_share_the_namespace() {
        let fs = MemFs::new();
        let alias = fs.clone();
        fs.write("shared", Bytes::from_static(b"x"));
        assert!(alias.read("shared").is_some());
    }
}
