//! The generic storage service.

use bytes::Bytes;

use marea_core::{FileEvent, FnPort, Service, ServiceContext, ServiceDescriptor};
use marea_presentation::{Name, Value};

use crate::fs::MemFs;
use crate::names;

/// Stores named blobs in an inner filesystem and archives every photo
/// revision it receives over the file-transfer primitive.
///
/// > *"The storage service is a generic service that provides storage and
/// > retrieval of data by providing access to an inner file system. It is
/// > told to store the photos and the GPS positions by the MC."* — paper §5
#[derive(Debug)]
pub struct StorageService {
    fs: MemFs,
    store: FnPort<(String, Vec<u8>), bool>,
    get: FnPort<(String,), Vec<u8>>,
    list: FnPort<(String,), String>,
}

impl StorageService {
    /// Creates a storage service over `fs` (clone the [`MemFs`] to inspect
    /// stored content from tests).
    pub fn new(fs: MemFs) -> Self {
        StorageService {
            fs,
            store: names::storage_store_port(),
            get: names::storage_get_port(),
            list: names::storage_list_port(),
        }
    }

    /// A restart factory over the same shared filesystem: a chaos
    /// `Restart` brings storage back with its namespace intact (the
    /// persistent-disk model), so clients re-resolve and keep writing.
    pub fn factory(fs: MemFs) -> impl Fn() -> Box<dyn Service> + Send {
        move || Box::new(StorageService::new(fs.clone())) as Box<dyn Service>
    }
}

impl Service for StorageService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("storage")
            .provides_fn(&self.store)
            .provides_fn(&self.get)
            .provides_fn(&self.list)
            .subscribe_file(names::FILE_PHOTO)
            .build()
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        function: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        if self.store.matches(function) {
            let (path, data) = self.store.decode_args(args).map_err(|e| e.to_string())?;
            ctx.log(format!("storage: stored `{path}` ({} bytes)", data.len()));
            self.fs.write(path, Bytes::from(data));
            Ok(self.store.encode_ret(true))
        } else if self.get.matches(function) {
            let (path,) = self.get.decode_args(args).map_err(|e| e.to_string())?;
            match self.fs.read(&path) {
                Some(data) => Ok(self.get.encode_ret(data.to_vec())),
                None => Err(format!("no such file `{path}`")),
            }
        } else if self.list.matches(function) {
            let (prefix,) = self.list.decode_args(args).map_err(|e| e.to_string())?;
            Ok(self.list.encode_ret(self.fs.list(&prefix).join("\n")))
        } else {
            Err(format!("unknown function `{function}`"))
        }
    }

    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, event: &FileEvent) {
        if let FileEvent::Received { resource, revision, data } = event {
            let path = format!("photos/{resource}/rev-{revision:04}");
            ctx.log(format!("storage: archived `{path}` ({} bytes)", data.len()));
            self.fs.write(path, data.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_exposes_fs_functions() {
        let s = StorageService::new(MemFs::new());
        let d = s.descriptor();
        for f in [names::FN_STORAGE_STORE, names::FN_STORAGE_GET, names::FN_STORAGE_LIST] {
            assert!(d.provides().iter().any(|p| p.name() == f), "{f}");
        }
        assert!(d.file_interests().iter().any(|i| i == names::FILE_PHOTO));
    }
}
