//! The generic storage service.

use bytes::Bytes;

use marea_core::{FileEvent, Service, ServiceContext, ServiceDescriptor};
use marea_presentation::{DataType, Name, Value};

use crate::fs::MemFs;
use crate::names;

/// Stores named blobs in an inner filesystem and archives every photo
/// revision it receives over the file-transfer primitive.
///
/// > *"The storage service is a generic service that provides storage and
/// > retrieval of data by providing access to an inner file system. It is
/// > told to store the photos and the GPS positions by the MC."* — paper §5
#[derive(Debug)]
pub struct StorageService {
    fs: MemFs,
}

impl StorageService {
    /// Creates a storage service over `fs` (clone the [`MemFs`] to inspect
    /// stored content from tests).
    pub fn new(fs: MemFs) -> Self {
        StorageService { fs }
    }
}

impl Service for StorageService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("storage")
            .function(
                names::FN_STORAGE_STORE,
                vec![DataType::Str, DataType::Bytes],
                Some(DataType::Bool),
            )
            .function(names::FN_STORAGE_GET, vec![DataType::Str], Some(DataType::Bytes))
            .function(names::FN_STORAGE_LIST, vec![DataType::Str], Some(DataType::Str))
            .subscribe_file(names::FILE_PHOTO)
            .build()
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        function: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        match function.as_str() {
            f if f == names::FN_STORAGE_STORE => {
                let path = args[0].as_str().ok_or("path must be a string")?.to_owned();
                let data = args[1].as_bytes().ok_or("data must be bytes")?.to_vec();
                ctx.log(format!("storage: stored `{path}` ({} bytes)", data.len()));
                self.fs.write(path, Bytes::from(data));
                Ok(Value::Bool(true))
            }
            f if f == names::FN_STORAGE_GET => {
                let path = args[0].as_str().ok_or("path must be a string")?;
                match self.fs.read(path) {
                    Some(data) => Ok(Value::Bytes(data.to_vec())),
                    None => Err(format!("no such file `{path}`")),
                }
            }
            f if f == names::FN_STORAGE_LIST => {
                let prefix = args[0].as_str().ok_or("prefix must be a string")?;
                Ok(Value::Str(self.fs.list(prefix).join("\n")))
            }
            other => Err(format!("unknown function `{other}`")),
        }
    }

    fn on_file_event(&mut self, ctx: &mut ServiceContext<'_>, event: &FileEvent) {
        if let FileEvent::Received { resource, revision, data } = event {
            let path = format!("photos/{resource}/rev-{revision:04}");
            ctx.log(format!("storage: archived `{path}` ({} bytes)", data.len()));
            self.fs.write(path, data.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_exposes_fs_functions() {
        let s = StorageService::new(MemFs::new());
        let d = s.descriptor();
        for f in [names::FN_STORAGE_STORE, names::FN_STORAGE_GET, names::FN_STORAGE_LIST] {
            assert!(d.provides().iter().any(|p| p.name() == f), "{f}");
        }
        assert!(d.file_interests().iter().any(|i| i == names::FILE_PHOTO));
    }
}
