//! The GPS service: the mission's data source (paper §5).

use std::sync::Arc;

use parking_lot::Mutex;

use marea_core::{
    EventPort, ProtoDuration, Service, ServiceContext, ServiceDescriptor, TimerId, VarPort, VarQos,
};
use marea_flightsim::sensors::GpsSensor;
use marea_flightsim::World;

use crate::names::{self, Position};

/// The simulated world shared by the airframe-facing services (GPS drives
/// it forward; the camera reads it).
pub type SharedWorld = Arc<Mutex<World>>;

/// Publishes `gps/position` at a fixed rate from the simulated airframe.
///
/// > *"The position is a high rate changing data and the consumer services
/// > can lose some values without problem, then the variable primitive for
/// > its high efficiency is preferred over the safer event primitive."*
/// > — paper §5
#[derive(Debug)]
pub struct GpsService {
    world: SharedWorld,
    sensor: GpsSensor,
    period: ProtoDuration,
    validity: ProtoDuration,
    in_outage: bool,
    position: VarPort<Position>,
    fix_lost: EventPort<()>,
}

impl GpsService {
    /// Creates the service over a shared world; `seed` drives sensor noise.
    pub fn new(world: SharedWorld, seed: u64) -> Self {
        GpsService {
            world,
            sensor: GpsSensor::new(seed),
            period: ProtoDuration::from_millis(50), // 20 Hz
            validity: ProtoDuration::from_millis(200),
            in_outage: false,
            position: names::position_port(),
            fix_lost: names::fix_lost_port(),
        }
    }

    /// Overrides the publication period (builder style).
    #[must_use]
    pub fn with_period(mut self, period: ProtoDuration) -> Self {
        self.period = period;
        self
    }

    /// A restart factory over the same shared world, for
    /// [`SimHarness::add_service_factory`](marea_core::SimHarness::add_service_factory):
    /// a chaos `Restart` rebuilds the GPS against the world where the
    /// airframe kept flying while the node was down.
    pub fn factory(world: SharedWorld, seed: u64) -> impl Fn() -> Box<dyn Service> + Send {
        move || Box::new(GpsService::new(world.clone(), seed)) as Box<dyn Service>
    }

    /// Direct sensor access (tests inject outages).
    pub fn sensor_mut(&mut self) -> &mut GpsSensor {
        &mut self.sensor
    }
}

impl Service for GpsService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("gps")
            .provides_var(&self.position, VarQos::periodic(self.period, self.validity))
            .provides_event(&self.fix_lost)
            .build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.set_timer(self.period, Some(self.period));
        ctx.log("gps: started");
    }

    fn on_timer(&mut self, ctx: &mut ServiceContext<'_>, _id: TimerId) {
        let t_s = ctx.now().as_micros() as f64 / 1e6;
        let (state, fix) = {
            let mut world = self.world.lock();
            world.advance_to(t_s);
            let state = world.state();
            (state, self.sensor.sample(&state, t_s))
        };
        match fix {
            Some(fix) => {
                if self.in_outage {
                    self.in_outage = false;
                    ctx.log("gps: fix re-acquired");
                }
                ctx.publish_to(
                    &self.position,
                    Position {
                        lat: fix.position.lat,
                        lon: fix.position.lon,
                        alt: fix.position.alt,
                        heading: fix.course_rad,
                        speed: fix.speed_mps,
                    },
                );
            }
            None => {
                if !self.in_outage {
                    self.in_outage = true;
                    ctx.emit_to(&self.fix_lost, ());
                    ctx.log(format!(
                        "gps: fix lost at ({:.5}, {:.5})",
                        state.position.lat, state.position.lon
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_flightsim::{FlightPlan, GeoPoint, Terrain};

    #[test]
    fn descriptor_declares_the_contract() {
        let origin = GeoPoint::new(41.275, 1.987, 120.0);
        let world = Arc::new(Mutex::new(World::new(
            origin,
            20.0,
            FlightPlan::default(),
            Terrain::new(1, origin, 100.0, 0),
        )));
        let svc = GpsService::new(world, 1);
        let d = svc.descriptor();
        assert_eq!(d.name(), "gps");
        assert!(d.provides().iter().any(|p| p.name() == names::VAR_POSITION));
        assert!(d.provides().iter().any(|p| p.name() == names::EVT_FIX_LOST));
    }
}
