//! The ground control station service.

use std::sync::Arc;

use parking_lot::Mutex;

use marea_core::{
    EventPort, EventQos, Micros, Service, ServiceContext, ServiceDescriptor, VarPort, VarQos,
};
use marea_presentation::{Name, Value};

use crate::names::{self, Detection, McStatus, Position};

/// The operator's console feed: a shareable, append-only line buffer.
pub type Display = Arc<Mutex<Vec<String>>>;

/// Subscribes to the mission's variables and events and renders them as
/// terminal lines.
///
/// > *"In this simple use case, the ground station basically shows the
/// > subscribed variables and events in a terminal."* — paper §5
#[derive(Debug)]
pub struct GroundStationService {
    display: Display,
    positions_seen: u64,
    /// Display one position line out of every `decimate` fixes (20 Hz
    /// telemetry would scroll a real console unreadably).
    decimate: u64,
    position: VarPort<Position>,
    mc_status: VarPort<McStatus>,
    photo_request: EventPort<u32>,
    photo_taken: EventPort<u32>,
    mission_complete: EventPort<()>,
    target_alert: EventPort<Detection>,
    fix_lost: EventPort<()>,
}

impl GroundStationService {
    /// Creates a ground station writing into `display`.
    pub fn new(display: Display) -> Self {
        GroundStationService {
            display,
            positions_seen: 0,
            decimate: 20,
            position: names::position_port(),
            mc_status: names::mc_status_port(),
            photo_request: names::photo_request_port(),
            photo_taken: names::photo_taken_port(),
            mission_complete: names::mission_complete_port(),
            target_alert: names::target_alert_port(),
            fix_lost: names::fix_lost_port(),
        }
    }

    /// A restart factory over the same display log: a chaos `Restart`
    /// resumes the terminal feed where the operator left off.
    pub fn factory(display: Display) -> impl Fn() -> Box<dyn Service> + Send {
        move || Box::new(GroundStationService::new(display.clone())) as Box<dyn Service>
    }

    /// Shows every n-th position (builder style).
    #[must_use]
    pub fn with_decimation(mut self, decimate: u64) -> Self {
        self.decimate = decimate.max(1);
        self
    }

    fn show(&self, now: Micros, line: impl AsRef<str>) {
        self.display.lock().push(format!(
            "[{:>10.3}s] {}",
            now.as_micros() as f64 / 1e6,
            line.as_ref()
        ));
    }
}

impl Service for GroundStationService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("ground-station")
            .subscribe_to_var(&self.position, VarQos::default())
            .subscribe_to_var(&self.mc_status, VarQos::default().with_initial())
            .subscribe_to_event(&self.photo_request, EventQos::default())
            .subscribe_to_event(&self.photo_taken, EventQos::default())
            .subscribe_to_event(&self.mission_complete, EventQos::default())
            .subscribe_to_event(&self.target_alert, EventQos::default())
            .subscribe_to_event(&self.fix_lost, EventQos::default())
            .build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        self.show(ctx.now(), "ground station online");
    }

    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        if self.position.matches(name) {
            self.positions_seen += 1;
            if self.positions_seen.is_multiple_of(self.decimate) {
                if let Ok(Position { lat, lon, alt, heading, speed }) = self.position.decode(value)
                {
                    self.show(
                        ctx.now(),
                        format!(
                            "pos {lat:.5},{lon:.5} alt {alt:.0}m hdg {:.0}° spd {speed:.1}m/s",
                            heading.to_degrees()
                        ),
                    );
                }
            }
        } else if self.mc_status.matches(name) {
            match self.mc_status.decode(value) {
                Ok(s) => self.show(
                    ctx.now(),
                    format!(
                        "mission status: waypoint {} photos {} complete {}",
                        s.next_waypoint, s.photos, s.complete
                    ),
                ),
                Err(e) => self.show(ctx.now(), format!("undecodable mission status: {e}")),
            }
        }
    }

    fn on_variable_timeout(&mut self, ctx: &mut ServiceContext<'_>, name: &Name) {
        self.show(ctx.now(), format!("WARNING: variable `{name}` stopped arriving"));
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: Option<&Value>,
        _stamp: Micros,
    ) {
        let line = if self.photo_request.matches(name) {
            format!("photo requested at waypoint {}", self.photo_request.decode(value).unwrap_or(0))
        } else if self.photo_taken.matches(name) {
            format!("photo {} taken", self.photo_taken.decode(value).unwrap_or(0))
        } else if self.mission_complete.matches(name) {
            "MISSION COMPLETE".to_owned()
        } else if self.target_alert.matches(name) {
            match self.target_alert.decode(value) {
                Ok(Detection { revision, count }) => {
                    format!("TARGET ALERT: {count} target(s) in photo {revision}")
                }
                Err(_) => "TARGET ALERT".to_owned(),
            }
        } else if self.fix_lost.matches(name) {
            "WARNING: gps fix lost".to_owned()
        } else {
            format!("event `{name}`")
        };
        self.show(ctx.now(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_subscribes_to_the_mission_feed() {
        let d = GroundStationService::new(Display::default()).descriptor();
        assert_eq!(d.var_subscriptions().len(), 2);
        assert_eq!(d.event_subscriptions().len(), 5);
        assert!(d.provides().is_empty(), "pure consumer");
    }
}
