//! The ground control station service.

use std::sync::Arc;

use parking_lot::Mutex;

use marea_core::{Micros, Service, ServiceContext, ServiceDescriptor};
use marea_presentation::{Name, Value};

use crate::names::{self, parse_detection, parse_position};

/// The operator's console feed: a shareable, append-only line buffer.
pub type Display = Arc<Mutex<Vec<String>>>;

/// Subscribes to the mission's variables and events and renders them as
/// terminal lines.
///
/// > *"In this simple use case, the ground station basically shows the
/// > subscribed variables and events in a terminal."* — paper §5
#[derive(Debug)]
pub struct GroundStationService {
    display: Display,
    positions_seen: u64,
    /// Display one position line out of every `decimate` fixes (20 Hz
    /// telemetry would scroll a real console unreadably).
    decimate: u64,
}

impl GroundStationService {
    /// Creates a ground station writing into `display`.
    pub fn new(display: Display) -> Self {
        GroundStationService { display, positions_seen: 0, decimate: 20 }
    }

    /// Shows every n-th position (builder style).
    #[must_use]
    pub fn with_decimation(mut self, decimate: u64) -> Self {
        self.decimate = decimate.max(1);
        self
    }

    fn show(&self, now: Micros, line: impl AsRef<str>) {
        self.display.lock().push(format!("[{:>10.3}s] {}", now.as_micros() as f64 / 1e6, line.as_ref()));
    }
}

impl Service for GroundStationService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("ground-station")
            .subscribe_variable(names::VAR_POSITION, false)
            .subscribe_variable(names::VAR_MC_STATUS, true)
            .subscribe_event(names::EVT_PHOTO_REQUEST)
            .subscribe_event(names::EVT_PHOTO_TAKEN)
            .subscribe_event(names::EVT_MISSION_COMPLETE)
            .subscribe_event(names::EVT_TARGET_ALERT)
            .subscribe_event(names::EVT_FIX_LOST)
            .build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        self.show(ctx.now(), "ground station online");
    }

    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        if name == names::VAR_POSITION {
            self.positions_seen += 1;
            if self.positions_seen.is_multiple_of(self.decimate) {
                if let Some((lat, lon, alt, hdg, spd)) = parse_position(value) {
                    self.show(
                        ctx.now(),
                        format!(
                            "pos {lat:.5},{lon:.5} alt {alt:.0}m hdg {:.0}° spd {spd:.1}m/s",
                            hdg.to_degrees()
                        ),
                    );
                }
            }
        } else if name == names::VAR_MC_STATUS {
            self.show(ctx.now(), format!("mission status: {value}"));
        }
    }

    fn on_variable_timeout(&mut self, ctx: &mut ServiceContext<'_>, name: &Name) {
        self.show(ctx.now(), format!("WARNING: variable `{name}` stopped arriving"));
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: Option<&Value>,
        _stamp: Micros,
    ) {
        let line = match name.as_str() {
            n if n == names::EVT_PHOTO_REQUEST => {
                format!("photo requested at waypoint {}", value.and_then(Value::as_u64).unwrap_or(0))
            }
            n if n == names::EVT_PHOTO_TAKEN => {
                format!("photo {} taken", value.and_then(Value::as_u64).unwrap_or(0))
            }
            n if n == names::EVT_MISSION_COMPLETE => "MISSION COMPLETE".to_owned(),
            n if n == names::EVT_TARGET_ALERT => match value.and_then(parse_detection) {
                Some((rev, count)) => format!("TARGET ALERT: {count} target(s) in photo {rev}"),
                None => "TARGET ALERT".to_owned(),
            },
            n if n == names::EVT_FIX_LOST => "WARNING: gps fix lost".to_owned(),
            other => format!("event `{other}`"),
        };
        self.show(ctx.now(), line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_subscribes_to_the_mission_feed() {
        let d = GroundStationService::new(Display::default()).descriptor();
        assert_eq!(d.var_subscriptions().len(), 2);
        assert_eq!(d.event_subscriptions().len(), 5);
        assert!(d.provides().is_empty(), "pure consumer");
    }
}
