//! The camera payload service.

use bytes::Bytes;

use marea_core::{EventPort, EventQos, FnPort, Micros, Service, ServiceContext, ServiceDescriptor};
use marea_presentation::{Name, Value};

use crate::gps::SharedWorld;
use crate::names;

/// Captures frames on `mc/photo-request` events and distributes them as
/// revisions of the `camera/photo` file resource.
///
/// > *"Before arriving the first location, the MC instructs the camera to
/// > prepare itself to take photos and publish them with the specified
/// > name ... The multicast file transfer will be then used for efficiently
/// > sending the image to the storage and video processing modules."*
/// > — paper §5
#[derive(Debug)]
pub struct CameraService {
    world: SharedWorld,
    width: u32,
    height: u32,
    ready: bool,
    shots: u32,
    prepare: FnPort<(String,), bool>,
    photo_taken: EventPort<u32>,
    photo_request: EventPort<u32>,
}

impl CameraService {
    /// Creates a camera over the shared world with a default 256×256
    /// sensor.
    pub fn new(world: SharedWorld) -> Self {
        CameraService {
            world,
            width: 256,
            height: 256,
            ready: false,
            shots: 0,
            prepare: names::camera_prepare_port(),
            photo_taken: names::photo_taken_port(),
            photo_request: names::photo_request_port(),
        }
    }

    /// Overrides the sensor resolution (builder style).
    #[must_use]
    pub fn with_resolution(mut self, width: u32, height: u32) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Shots taken so far.
    pub fn shots(&self) -> u32 {
        self.shots
    }
}

impl Service for CameraService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("camera")
            .provides_fn(&self.prepare)
            .file_resource(names::FILE_PHOTO)
            .provides_event(&self.photo_taken)
            .subscribe_to_event(&self.photo_request, EventQos::default())
            .build()
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        function: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        if !self.prepare.matches(function) {
            return Err(format!("unknown function `{function}`"));
        }
        let (mission,) = self.prepare.decode_args(args).map_err(|e| e.to_string())?;
        self.ready = true;
        ctx.log(format!("camera: prepared for mission `{mission}`"));
        Ok(self.prepare.encode_ret(true))
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        _value: Option<&Value>,
        _stamp: Micros,
    ) {
        if !self.photo_request.matches(name) {
            return;
        }
        if !self.ready {
            ctx.log("camera: photo requested before prepare; ignored");
            return;
        }
        let frame = self.world.lock().capture_frame(self.width, self.height);
        self.shots += 1;
        let bytes = Bytes::from(frame.to_bytes());
        ctx.log(format!(
            "camera: shot {} captured ({}x{}, {} bytes)",
            self.shots,
            frame.width,
            frame.height,
            bytes.len()
        ));
        // Each shot is a new revision of the same named resource; the
        // middleware's revision mechanism (§4.4) carries it to every
        // subscriber.
        ctx.publish_file(names::FILE_PHOTO, bytes);
        ctx.emit_to(&self.photo_taken, self.shots);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_flightsim::{FlightPlan, GeoPoint, Terrain, World};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn descriptor_declares_photo_pipeline() {
        let origin = GeoPoint::new(41.275, 1.987, 120.0);
        let world = Arc::new(Mutex::new(World::new(
            origin,
            20.0,
            FlightPlan::default(),
            Terrain::new(1, origin, 100.0, 0),
        )));
        let cam = CameraService::new(world).with_resolution(64, 64);
        let d = cam.descriptor();
        assert!(d.provides().iter().any(|p| p.name() == names::FN_CAMERA_PREPARE));
        assert!(d.provides().iter().any(|p| p.name() == names::FILE_PHOTO));
        assert!(d.event_subscriptions().iter().any(|e| e.name == names::EVT_PHOTO_REQUEST));
        assert_eq!(cam.shots(), 0);
    }
}
