//! The camera payload service.

use bytes::Bytes;

use marea_core::{Micros, Service, ServiceContext, ServiceDescriptor};
use marea_presentation::{DataType, Name, Value};

use crate::gps::SharedWorld;
use crate::names;

/// Captures frames on `mc/photo-request` events and distributes them as
/// revisions of the `camera/photo` file resource.
///
/// > *"Before arriving the first location, the MC instructs the camera to
/// > prepare itself to take photos and publish them with the specified
/// > name ... The multicast file transfer will be then used for efficiently
/// > sending the image to the storage and video processing modules."*
/// > — paper §5
#[derive(Debug)]
pub struct CameraService {
    world: SharedWorld,
    width: u32,
    height: u32,
    ready: bool,
    shots: u32,
}

impl CameraService {
    /// Creates a camera over the shared world with a default 256×256
    /// sensor.
    pub fn new(world: SharedWorld) -> Self {
        CameraService { world, width: 256, height: 256, ready: false, shots: 0 }
    }

    /// Overrides the sensor resolution (builder style).
    #[must_use]
    pub fn with_resolution(mut self, width: u32, height: u32) -> Self {
        self.width = width;
        self.height = height;
        self
    }

    /// Shots taken so far.
    pub fn shots(&self) -> u32 {
        self.shots
    }
}

impl Service for CameraService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("camera")
            .function(names::FN_CAMERA_PREPARE, vec![DataType::Str], Some(DataType::Bool))
            .file_resource(names::FILE_PHOTO)
            .event(names::EVT_PHOTO_TAKEN, Some(DataType::U32))
            .subscribe_event(names::EVT_PHOTO_REQUEST)
            .build()
    }

    fn on_call(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        function: &Name,
        args: &[Value],
    ) -> Result<Value, String> {
        if function != names::FN_CAMERA_PREPARE {
            return Err(format!("unknown function `{function}`"));
        }
        let mission = args.first().and_then(Value::as_str).unwrap_or("unnamed");
        self.ready = true;
        ctx.log(format!("camera: prepared for mission `{mission}`"));
        Ok(Value::Bool(true))
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        _value: Option<&Value>,
        _stamp: Micros,
    ) {
        if name != names::EVT_PHOTO_REQUEST {
            return;
        }
        if !self.ready {
            ctx.log("camera: photo requested before prepare; ignored");
            return;
        }
        let frame = self.world.lock().capture_frame(self.width, self.height);
        self.shots += 1;
        let bytes = Bytes::from(frame.to_bytes());
        ctx.log(format!(
            "camera: shot {} captured ({}x{}, {} bytes)",
            self.shots,
            frame.width,
            frame.height,
            bytes.len()
        ));
        // Each shot is a new revision of the same named resource; the
        // middleware's revision mechanism (§4.4) carries it to every
        // subscriber.
        ctx.publish_file(names::FILE_PHOTO, bytes);
        ctx.emit(names::EVT_PHOTO_TAKEN, Some(Value::U32(self.shots)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use marea_flightsim::{FlightPlan, GeoPoint, Terrain, World};
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn descriptor_declares_photo_pipeline() {
        let origin = GeoPoint::new(41.275, 1.987, 120.0);
        let world = Arc::new(Mutex::new(World::new(
            origin,
            20.0,
            FlightPlan::default(),
            Terrain::new(1, origin, 100.0, 0),
        )));
        let cam = CameraService::new(world).with_resolution(64, 64);
        let d = cam.descriptor();
        assert!(d.provides().iter().any(|p| p.name() == names::FN_CAMERA_PREPARE));
        assert!(d.provides().iter().any(|p| p.name() == names::FILE_PHOTO));
        assert!(d.event_subscriptions().iter().any(|e| e == names::EVT_PHOTO_REQUEST));
        assert_eq!(cam.shots(), 0);
    }
}
