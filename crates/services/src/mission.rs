//! Mission control: the orchestrator of the Fig. 3 scenario.

use marea_core::{
    CallError, CallHandle, EventPort, EventQos, FnPort, Micros, ProtoDuration, Service,
    ServiceContext, ServiceDescriptor, TypedCallHandle, VarPort, VarQos,
};
use marea_flightsim::{FlightPlan, GeoPoint, WaypointAction};
use marea_presentation::{Name, Value};

use crate::names::{self, Detection, McStatus, Position};

/// Follows the flight plan and orchestrates the payload services.
///
/// > *"The Mission Control is a service that monitors the status of the
/// > mission and following a provided flight plan orchestrates the rest of
/// > services to autonomously accomplish the mission."* — paper §5
///
/// Interactions, one per primitive (the paper's point):
/// * consumes the `gps/position` **variable**;
/// * initializes the camera through a **remote invocation**
///   (`camera/prepare`);
/// * commands photos with the `mc/photo-request` **event**;
/// * the photos themselves travel as **file transfers** (camera → storage
///   / video), which mission control only observes through events.
///
/// Every interaction goes through a typed port from [`names`], so a
/// payload that disagrees with the mission vocabulary does not compile.
#[derive(Debug)]
pub struct MissionControlService {
    plan: FlightPlan,
    next_wp: usize,
    photos_requested: u32,
    complete_reported: bool,
    prepare_handle: Option<TypedCallHandle<bool>>,
    camera_ready: bool,
    // Provided ports.
    status: VarPort<McStatus>,
    photo_request: EventPort<u32>,
    mission_complete: EventPort<()>,
    target_alert: EventPort<Detection>,
    // Consumed ports.
    position: VarPort<Position>,
    target_detected: EventPort<Detection>,
    camera_prepare: FnPort<(String,), bool>,
    storage_store: FnPort<(String, Vec<u8>), bool>,
}

impl MissionControlService {
    /// Creates mission control for `plan`.
    pub fn new(plan: FlightPlan) -> Self {
        MissionControlService {
            plan,
            next_wp: 0,
            photos_requested: 0,
            complete_reported: false,
            prepare_handle: None,
            camera_ready: false,
            status: names::mc_status_port(),
            photo_request: names::photo_request_port(),
            mission_complete: names::mission_complete_port(),
            target_alert: names::target_alert_port(),
            position: names::position_port(),
            target_detected: names::target_detected_port(),
            camera_prepare: names::camera_prepare_port(),
            storage_store: names::storage_store_port(),
        }
    }

    fn publish_status(&self, ctx: &mut ServiceContext<'_>) {
        ctx.publish_to(
            &self.status,
            McStatus {
                next_waypoint: self.next_wp as u32,
                photos: self.photos_requested,
                complete: self.next_wp >= self.plan.len(),
            },
        );
    }
}

impl Service for MissionControlService {
    fn descriptor(&self) -> ServiceDescriptor {
        let mut b = ServiceDescriptor::builder("mission-control");
        b.provides_var(&self.status, VarQos::aperiodic(ProtoDuration::from_secs(5)))
            .provides_event(&self.photo_request)
            .provides_event(&self.mission_complete)
            .provides_event(&self.target_alert)
            .subscribe_to_var(&self.position, VarQos::default().with_initial())
            .subscribe_to_event(&self.target_detected, EventQos::default())
            .requires_fn(&self.camera_prepare)
            .requires_fn(&self.storage_store);
        b.build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.log(format!("mc: mission with {} waypoints", self.plan.len()));
        self.publish_status(ctx);
    }

    fn on_provider_change(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        notice: &marea_core::ProviderNotice,
    ) {
        // Initialize the camera as soon as its function appears ("all these
        // initialization have remote call semantics", §5).
        if let marea_core::ProviderNotice::FunctionAvailable(name) = notice {
            if self.camera_prepare.matches(name) && self.prepare_handle.is_none() {
                self.prepare_handle =
                    Some(ctx.call_fn(&self.camera_prepare, ("mission".to_owned(),)));
                ctx.log("mc: preparing camera");
            }
        }
    }

    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        handle: CallHandle,
        result: Result<Value, CallError>,
    ) {
        let Some(pending) = self.prepare_handle else { return };
        if !pending.matches(handle) {
            return;
        }
        match pending.decode(result) {
            Ok(true) => {
                self.camera_ready = true;
                ctx.log("mc: camera ready");
            }
            Ok(false) => {
                ctx.log("mc: camera declined to arm");
                self.prepare_handle = None; // retry on next availability
            }
            Err(e) => {
                ctx.log(format!("mc: camera prepare failed: {e}"));
                self.prepare_handle = None; // retry on next availability
            }
        }
    }

    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        if !self.position.matches(name) {
            return;
        }
        let here = match self.position.decode(value) {
            Ok(Position { lat, lon, alt, .. }) => GeoPoint::new(lat, lon, alt),
            Err(e) => {
                ctx.log(format!("mc: bad position sample: {e}"));
                return;
            }
        };
        let mut changed = false;
        while let Some(wp) = self.plan.get(self.next_wp) {
            if here.distance_m(&wp.point) > wp.radius_m {
                break;
            }
            if wp.action == WaypointAction::TakePhoto {
                if self.camera_ready {
                    ctx.emit_to(&self.photo_request, self.next_wp as u32);
                    self.photos_requested += 1;
                    ctx.log(format!("mc: photo requested at waypoint {}", self.next_wp));
                } else {
                    ctx.log(format!(
                        "mc: waypoint {} reached but camera not ready; skipping photo",
                        self.next_wp
                    ));
                }
            }
            self.next_wp += 1;
            changed = true;
        }
        if changed {
            self.publish_status(ctx);
            if self.next_wp >= self.plan.len() && !self.complete_reported {
                self.complete_reported = true;
                ctx.emit_to(&self.mission_complete, ());
                ctx.log("mc: mission complete");
            }
        }
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: Option<&Value>,
        _stamp: Micros,
    ) {
        if self.target_detected.matches(name) {
            // Relay to the ground station channel ("it can notify the GS
            // and MC", §5).
            match self.target_detected.decode(value) {
                Ok(detection) => {
                    ctx.emit_to(&self.target_alert, detection);
                    ctx.log(format!(
                        "mc: target alert relayed (photo {}, {} targets)",
                        detection.revision, detection.count
                    ));
                }
                Err(e) => ctx.log(format!("mc: undecodable detection: {e}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_wires_all_four_primitives() {
        let mc = MissionControlService::new(FlightPlan::default());
        let d = mc.descriptor();
        assert!(d.provides().iter().any(|p| p.name() == names::VAR_MC_STATUS));
        assert!(d.provides().iter().any(|p| p.name() == names::EVT_PHOTO_REQUEST));
        assert!(d.var_subscriptions().iter().any(|s| s.name == names::VAR_POSITION));
        assert!(d.required_functions().iter().any(|f| f == names::FN_CAMERA_PREPARE));
        assert!(d.event_subscriptions().iter().any(|e| e.name == names::EVT_TARGET_DETECTED));
    }
}
