//! Mission control: the orchestrator of the Fig. 3 scenario.

use marea_core::{
    CallError, CallHandle, Micros, ProtoDuration, Service, ServiceContext, ServiceDescriptor,
};
use marea_flightsim::{FlightPlan, GeoPoint, WaypointAction};
use marea_presentation::{DataType, Name, Value};

use crate::names::{self, parse_position};

/// Follows the flight plan and orchestrates the payload services.
///
/// > *"The Mission Control is a service that monitors the status of the
/// > mission and following a provided flight plan orchestrates the rest of
/// > services to autonomously accomplish the mission."* — paper §5
///
/// Interactions, one per primitive (the paper's point):
/// * consumes the `gps/position` **variable**;
/// * initializes the camera through a **remote invocation**
///   (`camera/prepare`);
/// * commands photos with the `mc/photo-request` **event**;
/// * the photos themselves travel as **file transfers** (camera → storage
///   / video), which mission control only observes through events.
#[derive(Debug)]
pub struct MissionControlService {
    plan: FlightPlan,
    next_wp: usize,
    photos_requested: u32,
    complete_reported: bool,
    prepare_handle: Option<CallHandle>,
    camera_ready: bool,
}

impl MissionControlService {
    /// Creates mission control for `plan`.
    pub fn new(plan: FlightPlan) -> Self {
        MissionControlService {
            plan,
            next_wp: 0,
            photos_requested: 0,
            complete_reported: false,
            prepare_handle: None,
            camera_ready: false,
        }
    }

    fn publish_status(&self, ctx: &mut ServiceContext<'_>) {
        let status = Value::struct_of("McStatus")
            .field("next_waypoint", self.next_wp as u32)
            .field("photos", self.photos_requested)
            .field("complete", self.next_wp >= self.plan.len())
            .build()
            .expect("literal field names");
        ctx.publish(names::VAR_MC_STATUS, status);
    }
}

impl Service for MissionControlService {
    fn descriptor(&self) -> ServiceDescriptor {
        ServiceDescriptor::builder("mission-control")
            .variable(
                names::VAR_MC_STATUS,
                names::mc_status_type(),
                ProtoDuration::ZERO,
                ProtoDuration::from_secs(5),
            )
            .event(names::EVT_PHOTO_REQUEST, Some(DataType::U32))
            .event(names::EVT_MISSION_COMPLETE, None)
            .event(names::EVT_TARGET_ALERT, Some(names::detection_type()))
            .subscribe_variable(names::VAR_POSITION, true)
            .subscribe_event(names::EVT_TARGET_DETECTED)
            .requires_function(names::FN_CAMERA_PREPARE)
            .requires_function(names::FN_STORAGE_STORE)
            .build()
    }

    fn on_start(&mut self, ctx: &mut ServiceContext<'_>) {
        ctx.log(format!("mc: mission with {} waypoints", self.plan.len()));
        self.publish_status(ctx);
    }

    fn on_provider_change(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        notice: &marea_core::ProviderNotice,
    ) {
        // Initialize the camera as soon as its function appears ("all these
        // initialization have remote call semantics", §5).
        if let marea_core::ProviderNotice::FunctionAvailable(name) = notice {
            if name == names::FN_CAMERA_PREPARE && self.prepare_handle.is_none() {
                self.prepare_handle =
                    Some(ctx.call(names::FN_CAMERA_PREPARE, vec![Value::Str("mission".into())]));
                ctx.log("mc: preparing camera");
            }
        }
    }

    fn on_reply(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        handle: CallHandle,
        result: Result<Value, CallError>,
    ) {
        if Some(handle) == self.prepare_handle {
            match result {
                Ok(_) => {
                    self.camera_ready = true;
                    ctx.log("mc: camera ready");
                }
                Err(e) => {
                    ctx.log(format!("mc: camera prepare failed: {e}"));
                    self.prepare_handle = None; // retry on next availability
                }
            }
        }
    }

    fn on_variable(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: &Value,
        _stamp: Micros,
    ) {
        if name != names::VAR_POSITION {
            return;
        }
        let Some((lat, lon, alt, _, _)) = parse_position(value) else { return };
        let here = GeoPoint::new(lat, lon, alt);
        let mut changed = false;
        while let Some(wp) = self.plan.get(self.next_wp) {
            if here.distance_m(&wp.point) > wp.radius_m {
                break;
            }
            if wp.action == WaypointAction::TakePhoto {
                if self.camera_ready {
                    ctx.emit(names::EVT_PHOTO_REQUEST, Some(Value::U32(self.next_wp as u32)));
                    self.photos_requested += 1;
                    ctx.log(format!("mc: photo requested at waypoint {}", self.next_wp));
                } else {
                    ctx.log(format!(
                        "mc: waypoint {} reached but camera not ready; skipping photo",
                        self.next_wp
                    ));
                }
            }
            self.next_wp += 1;
            changed = true;
        }
        if changed {
            self.publish_status(ctx);
            if self.next_wp >= self.plan.len() && !self.complete_reported {
                self.complete_reported = true;
                ctx.emit(names::EVT_MISSION_COMPLETE, None);
                ctx.log("mc: mission complete");
            }
        }
    }

    fn on_event(
        &mut self,
        ctx: &mut ServiceContext<'_>,
        name: &Name,
        value: Option<&Value>,
        _stamp: Micros,
    ) {
        if name == names::EVT_TARGET_DETECTED {
            // Relay to the ground station channel ("it can notify the GS
            // and MC", §5).
            if let Some(v) = value {
                ctx.emit(names::EVT_TARGET_ALERT, Some(v.clone()));
                ctx.log(format!("mc: target alert relayed ({v})"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_wires_all_four_primitives() {
        let mc = MissionControlService::new(FlightPlan::default());
        let d = mc.descriptor();
        assert!(d.provides().iter().any(|p| p.name() == names::VAR_MC_STATUS));
        assert!(d.provides().iter().any(|p| p.name() == names::EVT_PHOTO_REQUEST));
        assert!(d.var_subscriptions().iter().any(|s| s.name == names::VAR_POSITION));
        assert!(d.required_functions().iter().any(|f| f == names::FN_CAMERA_PREPARE));
        assert!(d.event_subscriptions().iter().any(|e| e == names::EVT_TARGET_DETECTED));
    }
}
