//! Dynamically-typed values exchanged between services.

use std::fmt;

use crate::error::{InvalidNameError, TypeError, TypeErrorKind};
use crate::name::Name;
use crate::path::{PathSegment, ValuePath};
use crate::types::{DataType, StructType, TypeKind, UnionType, VectorType};

/// A homogeneous sequence of values.
///
/// The element type is carried explicitly so that *empty* vectors still know
/// what they contain — required both for type checking and for the compact
/// codec.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorValue {
    elem_ty: DataType,
    items: Vec<Value>,
}

impl VectorValue {
    /// Creates a vector value, checking every element against `elem_ty`.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] locating the first non-conforming element.
    pub fn new(elem_ty: DataType, items: Vec<Value>) -> Result<Self, TypeError> {
        for (i, item) in items.iter().enumerate() {
            item.conforms_to(&elem_ty).map_err(|e| e.at_index(i))?;
        }
        Ok(VectorValue { elem_ty, items })
    }

    /// Creates an empty vector of `elem_ty`.
    pub fn empty(elem_ty: DataType) -> Self {
        VectorValue { elem_ty, items: Vec::new() }
    }

    /// Element type of the vector.
    pub fn elem_ty(&self) -> &DataType {
        &self.elem_ty
    }

    /// Elements in order.
    pub fn items(&self) -> &[Value] {
        &self.items
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` if the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends an element after checking it against the element type.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if `item` does not conform to the element
    /// type.
    pub fn push(&mut self, item: Value) -> Result<(), TypeError> {
        item.conforms_to(&self.elem_ty).map_err(|e| e.at_index(self.items.len()))?;
        self.items.push(item);
        Ok(())
    }

    /// Iterates over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.items.iter()
    }
}

impl<'a> IntoIterator for &'a VectorValue {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.items.iter()
    }
}

/// An ordered collection of named values (a struct instance).
///
/// The optional `type_name` is documentation-only: it never travels on the
/// wire and is deliberately excluded from equality, so a decoded struct
/// compares equal to the one that was encoded.
#[derive(Debug, Clone, Default)]
pub struct StructValue {
    type_name: Option<Name>,
    fields: Vec<(Name, Value)>,
}

impl PartialEq for StructValue {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

impl StructValue {
    /// Creates an empty struct value with no type name.
    pub fn new() -> Self {
        StructValue::default()
    }

    /// Documentation type name attached at construction, if any.
    pub fn type_name(&self) -> Option<&Name> {
        self.type_name.as_ref()
    }

    /// Fields in insertion order.
    pub fn fields(&self) -> &[(Name, Value)] {
        &self.fields
    }

    /// Looks up a field by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.fields.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Mutable lookup by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Value> {
        self.fields.iter_mut().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Sets a field, replacing any existing value under the same name.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNameError`] if `name` is not a valid [`Name`].
    pub fn set(&mut self, name: &str, value: impl Into<Value>) -> Result<(), InvalidNameError> {
        let name = Name::new(name)?;
        if let Some(slot) = self.fields.iter_mut().find(|(n, _)| *n == name) {
            slot.1 = value.into();
        } else {
            self.fields.push((name, value.into()));
        }
        Ok(())
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` if the struct has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }
}

/// A union instance: discriminant + selected alternative.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionValue {
    discriminant: u32,
    alternative: Name,
    value: Box<Value>,
}

impl UnionValue {
    /// Creates a union value selecting `alternative` (with its declaration
    /// index `discriminant`) and carrying `value`.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNameError`] if `alternative` is not a valid name.
    pub fn new(
        discriminant: u32,
        alternative: impl AsRef<str>,
        value: impl Into<Value>,
    ) -> Result<Self, InvalidNameError> {
        Ok(UnionValue {
            discriminant,
            alternative: Name::new(alternative)?,
            value: Box::new(value.into()),
        })
    }

    /// Creates a union value for `alternative` as declared by `ty`, checking
    /// the payload type.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] if the alternative is unknown or the payload
    /// does not conform to the alternative's type.
    pub fn for_type(
        ty: &UnionType,
        alternative: &str,
        value: impl Into<Value>,
    ) -> Result<Self, TypeError> {
        let disc = ty.discriminant(alternative).ok_or_else(|| {
            TypeError::new(TypeErrorKind::UnknownAlternative { alternative: alternative.into() })
        })?;
        let value = value.into();
        let alt = ty.alternative(alternative).expect("discriminant implies alternative");
        value.conforms_to(alt.ty()).map_err(|e| e.in_field(alternative))?;
        Ok(UnionValue {
            discriminant: disc,
            alternative: alt.name().clone(),
            value: Box::new(value),
        })
    }

    /// Wire discriminant (declaration index of the alternative).
    pub fn discriminant(&self) -> u32 {
        self.discriminant
    }

    /// Name of the selected alternative.
    pub fn alternative(&self) -> &Name {
        &self.alternative
    }

    /// Payload carried by the selected alternative.
    pub fn value(&self) -> &Value {
        &self.value
    }
}

/// A dynamically-typed MAREA datum.
///
/// Values mirror [`DataType`] one-to-one; [`Value::conforms_to`] checks a
/// value against a schema and pinpoints mismatches.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Boolean.
    Bool(bool),
    /// Signed 8-bit integer.
    I8(i8),
    /// Signed 16-bit integer.
    I16(i16),
    /// Signed 32-bit integer.
    I32(i32),
    /// Signed 64-bit integer.
    I64(i64),
    /// Unsigned 8-bit integer.
    U8(u8),
    /// Unsigned 16-bit integer.
    U16(u16),
    /// Unsigned 32-bit integer.
    U32(u32),
    /// Unsigned 64-bit integer.
    U64(u64),
    /// IEEE-754 single-precision float.
    F32(f32),
    /// IEEE-754 double-precision float.
    F64(f64),
    /// Unicode scalar value.
    Char(char),
    /// UTF-8 string.
    Str(String),
    /// Raw byte blob.
    Bytes(Vec<u8>),
    /// Homogeneous sequence.
    Vector(VectorValue),
    /// Named fields.
    Struct(StructValue),
    /// Tagged alternative.
    Union(UnionValue),
}

impl Value {
    /// The coarse kind of this value.
    pub fn kind(&self) -> TypeKind {
        match self {
            Value::Bool(_) => TypeKind::Bool,
            Value::I8(_) => TypeKind::I8,
            Value::I16(_) => TypeKind::I16,
            Value::I32(_) => TypeKind::I32,
            Value::I64(_) => TypeKind::I64,
            Value::U8(_) => TypeKind::U8,
            Value::U16(_) => TypeKind::U16,
            Value::U32(_) => TypeKind::U32,
            Value::U64(_) => TypeKind::U64,
            Value::F32(_) => TypeKind::F32,
            Value::F64(_) => TypeKind::F64,
            Value::Char(_) => TypeKind::Char,
            Value::Str(_) => TypeKind::Str,
            Value::Bytes(_) => TypeKind::Bytes,
            Value::Vector(_) => TypeKind::Vector,
            Value::Struct(_) => TypeKind::Struct,
            Value::Union(_) => TypeKind::Union,
        }
    }

    /// Starts building a struct value with a documentation type name.
    ///
    /// # Panics
    ///
    /// Panics if `type_name` is not a valid [`Name`] literal; use
    /// [`StructBuilder::anonymous`] for runtime names.
    pub fn struct_of(type_name: &str) -> StructBuilder {
        StructBuilder {
            inner: StructValue {
                type_name: Some(
                    Name::new(type_name).expect("struct type name must be a valid name literal"),
                ),
                fields: Vec::new(),
            },
            error: None,
        }
    }

    /// Checks this value against `ty`, locating the first mismatch.
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] describing the first place where the value
    /// deviates from the schema: kind mismatches, missing/unknown/reordered
    /// struct fields, wrong fixed-vector lengths, or unknown union
    /// alternatives.
    pub fn conforms_to(&self, ty: &DataType) -> Result<(), TypeError> {
        match (ty, self) {
            (DataType::Vector(vt), Value::Vector(vv)) => Self::check_vector(vt, vv),
            (DataType::Struct(st), Value::Struct(sv)) => Self::check_struct(st, sv),
            (DataType::Union(ut), Value::Union(uv)) => Self::check_union(ut, uv),
            (expected, found) if expected.kind() == found.kind() => Ok(()),
            (expected, found) => Err(expected.kind_mismatch(found.kind())),
        }
    }

    fn check_vector(vt: &VectorType, vv: &VectorValue) -> Result<(), TypeError> {
        if let Some(required) = vt.fixed_len() {
            if vv.len() != required {
                return Err(TypeError::new(TypeErrorKind::VectorLength {
                    expected: required,
                    found: vv.len(),
                }));
            }
        }
        if !vv.elem_ty().is_compatible_with(vt.elem()) {
            return Err(TypeError::new(TypeErrorKind::KindMismatch {
                expected: vt.elem().kind(),
                found: vv.elem_ty().kind(),
            }));
        }
        for (i, item) in vv.iter().enumerate() {
            item.conforms_to(vt.elem()).map_err(|e| e.at_index(i))?;
        }
        Ok(())
    }

    fn check_struct(st: &StructType, sv: &StructValue) -> Result<(), TypeError> {
        // Detect duplicates first so the error is precise.
        for (i, (name, _)) in sv.fields().iter().enumerate() {
            if sv.fields()[..i].iter().any(|(n, _)| n == name) {
                return Err(TypeError::new(TypeErrorKind::DuplicateField {
                    field: name.to_string(),
                }));
            }
        }
        for def in st.fields() {
            match sv.get(def.name().as_str()) {
                Some(v) => v.conforms_to(def.ty()).map_err(|e| e.in_field(def.name().as_str()))?,
                None => {
                    return Err(TypeError::new(TypeErrorKind::MissingField {
                        field: def.name().to_string(),
                    }))
                }
            }
        }
        for (name, _) in sv.fields() {
            if st.field(name.as_str()).is_none() {
                return Err(TypeError::new(TypeErrorKind::UnknownField {
                    field: name.to_string(),
                }));
            }
        }
        // Positional (compact) encoding requires declaration order.
        for (i, (name, _)) in sv.fields().iter().enumerate() {
            if st.fields()[i].name() != name {
                return Err(TypeError::new(TypeErrorKind::FieldOrder { field: name.to_string() }));
            }
        }
        Ok(())
    }

    fn check_union(ut: &UnionType, uv: &UnionValue) -> Result<(), TypeError> {
        let alt = ut.alternative(uv.alternative().as_str()).ok_or_else(|| {
            TypeError::new(TypeErrorKind::UnknownAlternative {
                alternative: uv.alternative().to_string(),
            })
        })?;
        let expected = ut.discriminant(uv.alternative().as_str()).expect("alternative exists");
        if expected != uv.discriminant() {
            return Err(TypeError::new(TypeErrorKind::DiscriminantMismatch {
                found: uv.discriminant(),
                expected,
            }));
        }
        uv.value().conforms_to(alt.ty()).map_err(|e| e.in_field(uv.alternative().as_str()))
    }

    /// Navigates into the value along a textual path such as
    /// `waypoints[2].lat`. Returns `None` when the path does not resolve.
    pub fn at(&self, path: &str) -> Option<&Value> {
        let parsed = ValuePath::parse(path).ok()?;
        self.at_path(&parsed)
    }

    /// Navigates into the value along a pre-parsed [`ValuePath`].
    pub fn at_path(&self, path: &ValuePath) -> Option<&Value> {
        let mut current = self;
        for seg in path.segments() {
            current = match (seg, current) {
                (PathSegment::Field(name), Value::Struct(s)) => s.get(name)?,
                (PathSegment::Field(name), Value::Union(u)) if u.alternative() == name.as_str() => {
                    u.value()
                }
                (PathSegment::Index(i), Value::Vector(v)) => v.items().get(*i)?,
                _ => return None,
            };
        }
        Some(current)
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is any signed integer (widening)
    /// or an unsigned integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I8(v) => Some(i64::from(*v)),
            Value::I16(v) => Some(i64::from(*v)),
            Value::I32(v) => Some(i64::from(*v)),
            Value::I64(v) => Some(*v),
            Value::U8(v) => Some(i64::from(*v)),
            Value::U16(v) => Some(i64::from(*v)),
            Value::U32(v) => Some(i64::from(*v)),
            Value::U64(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is any unsigned integer (widening)
    /// or a non-negative signed integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U8(v) => Some(u64::from(*v)),
            Value::U16(v) => Some(u64::from(*v)),
            Value::U32(v) => Some(u64::from(*v)),
            Value::U64(v) => Some(*v),
            Value::I8(v) => u64::try_from(*v).ok(),
            Value::I16(v) => u64::try_from(*v).ok(),
            Value::I32(v) => u64::try_from(*v).ok(),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is `F32` or `F64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F32(v) => Some(f64::from(*v)),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte payload, if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the struct payload, if this is a `Struct`.
    pub fn as_struct(&self) -> Option<&StructValue> {
        match self {
            Value::Struct(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the vector payload, if this is a `Vector`.
    pub fn as_vector(&self) -> Option<&VectorValue> {
        match self {
            Value::Vector(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the union payload, if this is a `Union`.
    pub fn as_union(&self) -> Option<&UnionValue> {
        match self {
            Value::Union(u) => Some(u),
            _ => None,
        }
    }

    /// Rough in-memory size in bytes, used by the container's resource
    /// accounting (paper §3, *resource management*).
    pub fn size_hint(&self) -> usize {
        match self {
            Value::Bool(_) | Value::I8(_) | Value::U8(_) => 1,
            Value::I16(_) | Value::U16(_) => 2,
            Value::I32(_) | Value::U32(_) | Value::F32(_) | Value::Char(_) => 4,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => 8,
            Value::Str(s) => s.len() + 8,
            Value::Bytes(b) => b.len() + 8,
            Value::Vector(v) => v.iter().map(Value::size_hint).sum::<usize>() + 8,
            Value::Struct(s) => {
                s.fields().iter().map(|(n, v)| n.len() + v.size_hint()).sum::<usize>() + 8
            }
            Value::Union(u) => u.value().size_hint() + u.alternative().len() + 8,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Bool(v) => write!(f, "{v}"),
            Value::I8(v) => write!(f, "{v}"),
            Value::I16(v) => write!(f, "{v}"),
            Value::I32(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::U8(v) => write!(f, "{v}"),
            Value::U16(v) => write!(f, "{v}"),
            Value::U32(v) => write!(f, "{v}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F32(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Char(v) => write!(f, "{v:?}"),
            Value::Str(v) => write!(f, "{v:?}"),
            Value::Bytes(v) => write!(f, "bytes[{}]", v.len()),
            Value::Vector(v) => {
                write!(f, "[")?;
                for (i, item) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
            Value::Struct(s) => {
                write!(f, "{{ ")?;
                for (i, (name, v)) in s.fields().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {v}")?;
                }
                write!(f, " }}")
            }
            Value::Union(u) => write!(f, "{}({})", u.alternative(), u.value()),
        }
    }
}

macro_rules! impl_from_scalar {
    ($($from:ty => $variant:ident),* $(,)?) => {
        $(
            impl From<$from> for Value {
                fn from(v: $from) -> Value {
                    Value::$variant(v)
                }
            }
        )*
    };
}

impl_from_scalar! {
    bool => Bool,
    i8 => I8,
    i16 => I16,
    i32 => I32,
    i64 => I64,
    u8 => U8,
    u16 => U16,
    u32 => U32,
    u64 => U64,
    f32 => F32,
    f64 => F64,
    char => Char,
    String => Str,
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}

impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Value {
        Value::Bytes(v)
    }
}

impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Value {
        Value::Bytes(v.to_vec())
    }
}

impl From<StructValue> for Value {
    fn from(v: StructValue) -> Value {
        Value::Struct(v)
    }
}

impl From<VectorValue> for Value {
    fn from(v: VectorValue) -> Value {
        Value::Vector(v)
    }
}

impl From<UnionValue> for Value {
    fn from(v: UnionValue) -> Value {
        Value::Union(v)
    }
}

/// Builder for [`StructValue`]s, obtained through [`Value::struct_of`] or
/// [`StructBuilder::anonymous`].
///
/// Field-name validation errors are deferred to [`StructBuilder::build`] so
/// chains stay ergonomic.
#[derive(Debug, Clone)]
pub struct StructBuilder {
    inner: StructValue,
    error: Option<InvalidNameError>,
}

impl StructBuilder {
    /// Starts building an anonymous struct value.
    pub fn anonymous() -> Self {
        StructBuilder { inner: StructValue::new(), error: None }
    }

    /// Appends a field.
    #[must_use]
    pub fn field(mut self, name: &str, value: impl Into<Value>) -> Self {
        if self.error.is_some() {
            return self;
        }
        match Name::new(name) {
            Ok(n) => {
                if self.inner.fields.iter().any(|(existing, _)| *existing == n) {
                    self.error = Some(InvalidNameError {
                        offending: name.to_owned(),
                        reason: "duplicate field name in struct value",
                    });
                } else {
                    self.inner.fields.push((n, value.into()));
                }
            }
            Err(e) => self.error = Some(e),
        }
        self
    }

    /// Finishes the struct.
    ///
    /// # Errors
    ///
    /// Returns the first field-name validation error encountered while
    /// building.
    pub fn build(self) -> Result<Value, InvalidNameError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(Value::Struct(self.inner)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn position_ty() -> DataType {
        DataType::Struct(
            StructType::new("Position")
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("lon", DataType::F64)
                .unwrap()
                .with_field("alt", DataType::F32)
                .unwrap(),
        )
    }

    fn position_val() -> Value {
        Value::struct_of("Position")
            .field("lat", 41.3)
            .field("lon", 2.1)
            .field("alt", 120.0f32)
            .build()
            .unwrap()
    }

    #[test]
    fn conforming_struct_passes() {
        position_val().conforms_to(&position_ty()).unwrap();
    }

    #[test]
    fn missing_field_is_reported() {
        let v = Value::struct_of("Position").field("lat", 41.3).field("lon", 2.1).build().unwrap();
        let err = v.conforms_to(&position_ty()).unwrap_err();
        assert_eq!(err.kind(), &TypeErrorKind::MissingField { field: "alt".into() });
    }

    #[test]
    fn unknown_field_is_reported() {
        let v = Value::struct_of("Position")
            .field("lat", 41.3)
            .field("lon", 2.1)
            .field("alt", 1.0f32)
            .field("extra", 1u8)
            .build()
            .unwrap();
        let err = v.conforms_to(&position_ty()).unwrap_err();
        assert_eq!(err.kind(), &TypeErrorKind::UnknownField { field: "extra".into() });
    }

    #[test]
    fn field_order_is_enforced() {
        let v = Value::struct_of("Position")
            .field("lon", 2.1)
            .field("lat", 41.3)
            .field("alt", 1.0f32)
            .build()
            .unwrap();
        let err = v.conforms_to(&position_ty()).unwrap_err();
        assert!(matches!(err.kind(), TypeErrorKind::FieldOrder { .. }));
    }

    #[test]
    fn nested_error_locations() {
        let wp_ty = DataType::Vector(VectorType::of(position_ty()));
        let bad = Value::Vector(
            VectorValue::new(position_ty(), vec![position_val(), position_val()]).unwrap(),
        );
        // Corrupt the second element's alt to a wrong kind via rebuild.
        let mut vv = match bad {
            Value::Vector(v) => v,
            _ => unreachable!(),
        };
        let mut items: Vec<Value> = vv.items().to_vec();
        if let Value::Struct(s) = &mut items[1] {
            *s.get_mut("alt").unwrap() = Value::Bool(true);
        }
        vv = VectorValue { elem_ty: vv.elem_ty().clone(), items };
        let err = Value::Vector(vv).conforms_to(&wp_ty).unwrap_err();
        assert_eq!(err.location(), "[1].alt");
    }

    #[test]
    fn fixed_vector_length_checked() {
        let ty = DataType::Vector(VectorType::fixed(DataType::U8, 3));
        let ok = Value::Vector(
            VectorValue::new(DataType::U8, vec![1u8.into(), 2u8.into(), 3u8.into()]).unwrap(),
        );
        ok.conforms_to(&ty).unwrap();
        let short =
            Value::Vector(VectorValue::new(DataType::U8, vec![1u8.into(), 2u8.into()]).unwrap());
        let err = short.conforms_to(&ty).unwrap_err();
        assert_eq!(err.kind(), &TypeErrorKind::VectorLength { expected: 3, found: 2 });
    }

    #[test]
    fn empty_vector_checks_via_elem_ty() {
        let ty = DataType::Vector(VectorType::of(DataType::F64));
        let ok = Value::Vector(VectorValue::empty(DataType::F64));
        ok.conforms_to(&ty).unwrap();
        let bad = Value::Vector(VectorValue::empty(DataType::Bool));
        assert!(bad.conforms_to(&ty).is_err());
    }

    #[test]
    fn union_checks_discriminant_and_payload() {
        let ty = UnionType::new("Alarm")
            .with_alternative("engine", DataType::U8)
            .unwrap()
            .with_alternative("link_loss", DataType::U16)
            .unwrap();
        let dt = DataType::Union(ty.clone());

        let ok = Value::Union(UnionValue::for_type(&ty, "link_loss", 7u16).unwrap());
        ok.conforms_to(&dt).unwrap();

        let wrong_payload = UnionValue::for_type(&ty, "link_loss", true);
        assert!(wrong_payload.is_err());

        let bad_disc = Value::Union(UnionValue::new(5, "engine", 1u8).unwrap());
        let err = bad_disc.conforms_to(&dt).unwrap_err();
        assert!(matches!(err.kind(), TypeErrorKind::DiscriminantMismatch { .. }));
    }

    #[test]
    fn path_navigation() {
        let wp = Value::struct_of("Plan")
            .field(
                "waypoints",
                VectorValue::new(position_ty(), vec![position_val(), position_val()]).unwrap(),
            )
            .field("name", "survey-A")
            .build()
            .unwrap();
        assert_eq!(wp.at("waypoints[1].lat").and_then(Value::as_f64), Some(41.3));
        assert_eq!(wp.at("name").and_then(Value::as_str), Some("survey-A"));
        assert!(wp.at("waypoints[9].lat").is_none());
        assert!(wp.at("bogus").is_none());
    }

    #[test]
    fn union_path_navigation() {
        let ty = UnionType::new("Alarm").with_alternative("engine", DataType::U8).unwrap();
        let v = Value::Union(UnionValue::for_type(&ty, "engine", 3u8).unwrap());
        assert_eq!(v.at("engine").and_then(|x| x.as_u64()), Some(3));
        assert!(v.at("link_loss").is_none());
    }

    #[test]
    fn numeric_coercions() {
        assert_eq!(Value::from(-3i8).as_i64(), Some(-3));
        assert_eq!(Value::from(300u16).as_u64(), Some(300));
        assert_eq!(Value::from(u64::MAX).as_i64(), None);
        assert_eq!(Value::from(-1i32).as_u64(), None);
        assert_eq!(Value::from(2.5f32).as_f64(), Some(2.5));
    }

    #[test]
    fn struct_set_replaces() {
        let mut s = StructValue::new();
        s.set("x", 1i32).unwrap();
        s.set("x", 2i32).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get("x").and_then(Value::as_i64), Some(2));
        assert!(s.set("bad name", 1i32).is_err());
    }

    #[test]
    fn builder_surfaces_name_errors() {
        let err = Value::struct_of("S").field("ok", 1i32).field("not ok", 2i32).build();
        assert!(err.is_err());
        let dup = Value::struct_of("S").field("a", 1i32).field("a", 2i32).build();
        assert!(dup.is_err());
    }

    #[test]
    fn vector_push_checks_type() {
        let mut v = VectorValue::empty(DataType::U8);
        v.push(1u8.into()).unwrap();
        assert!(v.push(true.into()).is_err());
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn size_hint_tracks_payload() {
        let small = Value::from(1u8);
        let big = Value::Bytes(vec![0; 1024]);
        assert!(big.size_hint() > small.size_hint());
        assert!(position_val().size_hint() > 20);
    }

    #[test]
    fn display_renders_compactly() {
        let v = position_val();
        let s = v.to_string();
        assert!(s.contains("lat: 41.3"), "{s}");
        assert_eq!(Value::Bytes(vec![1, 2, 3]).to_string(), "bytes[3]");
    }
}
