//! Textual paths into composite values (`waypoints[2].lat`).
//!
//! Ground-station displays and mission scripts frequently need to pluck one
//! field out of a telemetry record; [`ValuePath`] gives them a small, fast,
//! pre-parseable selector language: dot-separated field names and `[n]`
//! vector indices.

use std::fmt;
use std::str::FromStr;

use crate::error::PathError;

/// One step of a [`ValuePath`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PathSegment {
    /// Descend into a struct field or union alternative by name.
    Field(String),
    /// Descend into a vector element by index.
    Index(usize),
}

impl fmt::Display for PathSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathSegment::Field(name) => f.write_str(name),
            PathSegment::Index(i) => write!(f, "[{i}]"),
        }
    }
}

/// A parsed path into a composite [`Value`](crate::Value).
///
/// # Examples
///
/// ```
/// use marea_presentation::ValuePath;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let p = ValuePath::parse("waypoints[2].lat")?;
/// assert_eq!(p.segments().len(), 3);
/// assert_eq!(p.to_string(), "waypoints[2].lat");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ValuePath {
    segments: Vec<PathSegment>,
}

impl ValuePath {
    /// Parses a textual path.
    ///
    /// Grammar: `field ( '.' field | '[' digits ']' )*`, where `field` is a
    /// run of characters other than `.`, `[`, `]`.
    ///
    /// # Errors
    ///
    /// Returns [`PathError`] on empty input, empty components, unterminated
    /// or non-numeric indices.
    pub fn parse(s: &str) -> Result<Self, PathError> {
        if s.is_empty() {
            return Err(PathError::Empty);
        }
        let mut segments = Vec::new();
        let bytes = s.as_bytes();
        let mut i = 0;
        let mut expect_field = true; // a path must start with a field name
        while i < bytes.len() {
            match bytes[i] {
                b'.' => {
                    if expect_field {
                        return Err(PathError::Syntax { at: i, reason: "empty field name" });
                    }
                    expect_field = true;
                    i += 1;
                }
                b'[' => {
                    if expect_field {
                        return Err(PathError::Syntax {
                            at: i,
                            reason: "index not allowed here; expected field name",
                        });
                    }
                    let close = s[i..]
                        .find(']')
                        .map(|off| i + off)
                        .ok_or(PathError::Syntax { at: i, reason: "unterminated index" })?;
                    let digits = &s[i + 1..close];
                    if digits.is_empty() {
                        return Err(PathError::Syntax { at: i + 1, reason: "empty index" });
                    }
                    let idx = digits.parse::<usize>().map_err(|_| PathError::Syntax {
                        at: i + 1,
                        reason: "index is not a number",
                    })?;
                    segments.push(PathSegment::Index(idx));
                    i = close + 1;
                }
                b']' => return Err(PathError::Syntax { at: i, reason: "unexpected `]`" }),
                _ => {
                    if !expect_field {
                        return Err(PathError::Syntax {
                            at: i,
                            reason: "expected `.` or `[` between segments",
                        });
                    }
                    let end = s[i..].find(['.', '[', ']']).map(|off| i + off).unwrap_or(s.len());
                    segments.push(PathSegment::Field(s[i..end].to_owned()));
                    expect_field = false;
                    i = end;
                }
            }
        }
        if expect_field {
            return Err(PathError::Syntax { at: s.len(), reason: "trailing `.`" });
        }
        if segments.is_empty() {
            return Err(PathError::Empty);
        }
        Ok(ValuePath { segments })
    }

    /// The parsed segments in order.
    pub fn segments(&self) -> &[PathSegment] {
        &self.segments
    }
}

impl fmt::Display for ValuePath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, seg) in self.segments.iter().enumerate() {
            if i > 0 && matches!(seg, PathSegment::Field(_)) {
                write!(f, ".")?;
            }
            write!(f, "{seg}")?;
        }
        Ok(())
    }
}

impl FromStr for ValuePath {
    type Err = PathError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ValuePath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_fields_and_indices() {
        let p = ValuePath::parse("a.b[3].c[0][1]").unwrap();
        assert_eq!(
            p.segments(),
            &[
                PathSegment::Field("a".into()),
                PathSegment::Field("b".into()),
                PathSegment::Index(3),
                PathSegment::Field("c".into()),
                PathSegment::Index(0),
                PathSegment::Index(1),
            ]
        );
    }

    #[test]
    fn display_roundtrips() {
        for src in ["a", "a.b", "a[0]", "a.b[3].c[0][1]", "gps.position.lat"] {
            let p = ValuePath::parse(src).unwrap();
            assert_eq!(p.to_string(), src);
            let again: ValuePath = p.to_string().parse().unwrap();
            assert_eq!(again, p);
        }
    }

    #[test]
    fn rejects_bad_paths() {
        for bad in ["", ".", "a.", ".a", "a..b", "[0]", "a[", "a[]", "a[x]", "a]b", "a[0]b"] {
            assert!(ValuePath::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn error_positions_are_reported() {
        match ValuePath::parse("ab..c") {
            Err(PathError::Syntax { at, .. }) => assert_eq!(at, 3),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
