//! Interned, validated identifiers.
//!
//! Every addressable entity in MAREA — services, variables, events, remote
//! functions, file resources — is identified *by name* (paper §3: "The
//! services are addressed by name, and the Service Container discovers the
//! real location in the network of the named service"). Names therefore
//! travel on the wire constantly; [`Name`] keeps them cheap to clone
//! (`Arc<str>`) and guarantees at construction time that they fit the
//! portable character set shared by every node of the fleet.

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::str::FromStr;
use std::sync::Arc;

use crate::error::InvalidNameError;

/// A validated, cheaply-cloneable identifier.
///
/// Valid names are non-empty, at most 128 bytes, start with an ASCII letter
/// and contain only ASCII letters, digits and `.`, `_`, `-`, `/`.
///
/// # Examples
///
/// ```
/// use marea_presentation::Name;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let gps = Name::new("gps")?;
/// let var = Name::new("gps/position")?;
/// assert_eq!(var.as_str(), "gps/position");
/// assert!(Name::new("").is_err());
/// assert!(Name::new("no spaces").is_err());
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct Name(Arc<str>);

impl Name {
    /// Validates `s` and returns it as a [`Name`].
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNameError`] if `s` is empty, longer than 128 bytes,
    /// does not start with an ASCII letter, or contains characters outside
    /// `[A-Za-z0-9._\-/]`.
    pub fn new(s: impl AsRef<str>) -> Result<Self, InvalidNameError> {
        let s = s.as_ref();
        Self::validate(s)?;
        Ok(Name(Arc::from(s)))
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Length of the name in bytes.
    #[allow(clippy::len_without_is_empty)] // names are never empty by construction
    pub fn len(&self) -> usize {
        self.0.len()
    }

    fn validate(s: &str) -> Result<(), InvalidNameError> {
        let fail = |reason| Err(InvalidNameError { offending: s.to_owned(), reason });
        if s.is_empty() {
            return fail("name is empty");
        }
        if s.len() > InvalidNameError::MAX_LEN {
            return fail("name exceeds 128 bytes");
        }
        let first = s.as_bytes()[0];
        if !first.is_ascii_alphabetic() {
            return fail("must start with a letter");
        }
        for &b in s.as_bytes() {
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-' | b'/');
            if !ok {
                return fail("contains a character outside [A-Za-z0-9._-/]");
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Name({:?})", &*self.0)
    }
}

impl fmt::Display for Name {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl PartialEq for Name {
    fn eq(&self, other: &Self) -> bool {
        // Pointer equality fast path; falls back to byte comparison.
        Arc::ptr_eq(&self.0, &other.0) || self.0 == other.0
    }
}

impl Eq for Name {}

impl PartialEq<str> for Name {
    fn eq(&self, other: &str) -> bool {
        &*self.0 == other
    }
}

impl PartialEq<&str> for Name {
    fn eq(&self, other: &&str) -> bool {
        &*self.0 == *other
    }
}

impl PartialOrd for Name {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Name {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(&other.0)
    }
}

impl Hash for Name {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.0.hash(state)
    }
}

impl Borrow<str> for Name {
    fn borrow(&self) -> &str {
        &self.0
    }
}

impl AsRef<str> for Name {
    fn as_ref(&self) -> &str {
        &self.0
    }
}

impl FromStr for Name {
    type Err = InvalidNameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::new(s)
    }
}

impl TryFrom<&str> for Name {
    type Error = InvalidNameError;

    fn try_from(s: &str) -> Result<Self, Self::Error> {
        Name::new(s)
    }
}

impl TryFrom<String> for Name {
    type Error = InvalidNameError;

    fn try_from(s: String) -> Result<Self, Self::Error> {
        Name::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn accepts_typical_avionics_names() {
        for ok in ["gps", "gps/position", "mission-control", "camera.front", "fs_root/img01"] {
            assert!(Name::new(ok).is_ok(), "{ok} should be valid");
        }
    }

    #[test]
    fn rejects_bad_names() {
        for bad in ["", " ", "9lives", "_x", "a b", "café", "a\nb", "/abs"] {
            assert!(Name::new(bad).is_err(), "{bad:?} should be invalid");
        }
    }

    #[test]
    fn rejects_overlong_names() {
        let long = format!("a{}", "x".repeat(InvalidNameError::MAX_LEN));
        assert!(Name::new(&long).is_err());
        let fits = format!("a{}", "x".repeat(InvalidNameError::MAX_LEN - 1));
        assert!(Name::new(&fits).is_ok());
    }

    #[test]
    fn equality_and_hash_follow_content() {
        let a = Name::new("gps").unwrap();
        let b = Name::new("gps").unwrap();
        let c = a.clone();
        assert_eq!(a, b);
        assert_eq!(a, c);
        assert_eq!(a, "gps");
        let mut m = HashMap::new();
        m.insert(a, 1);
        // Borrow<str> allows lookup by &str.
        assert_eq!(m.get("gps"), Some(&1));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Name::new("camera").unwrap(), Name::new("aphid").unwrap()];
        v.sort();
        assert_eq!(v[0], "aphid");
    }

    #[test]
    fn from_str_roundtrip() {
        let n: Name = "storage".parse().unwrap();
        assert_eq!(n.to_string(), "storage");
        assert_eq!(n.len(), 7);
    }
}
