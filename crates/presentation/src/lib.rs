//! # marea-presentation — the PEPt *Presentation* layer
//!
//! This crate implements the data model that MAREA services use to describe
//! the information they exchange: the "C-like language" type system the paper
//! calls for in §4.1:
//!
//! > *"Each of them is composed of a basic type (boolean, integer, floating
//! > point real, character string, etc.) or by a composition (vector, struct
//! > or union) of basic types. From the point of view of the allowed data
//! > types in a variable our middleware is similar to a C-like language."*
//!
//! The two central types are [`DataType`] (the *schema* of a variable, event
//! payload, function parameter or file metadata record) and [`Value`] (a
//! dynamically-typed datum conforming to some [`DataType`]). Services build
//! [`Value`]s, the encoding layer serializes them, and the protocol /
//! transport layers move the resulting bytes — none of the lower layers ever
//! interprets application data, which is exactly the decoupling the PEPt
//! architecture (paper §6) prescribes.
//!
//! ## Example
//!
//! ```
//! use marea_presentation::{DataType, StructType, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Schema of the GPS `position` variable from the paper's Fig. 3 scenario.
//! let position_ty = DataType::Struct(StructType::new("Position")
//!     .with_field("lat", DataType::F64)?
//!     .with_field("lon", DataType::F64)?
//!     .with_field("alt", DataType::F32)?);
//!
//! let fix = Value::struct_of("Position")
//!     .field("lat", 41.27641)
//!     .field("lon", 1.98720)
//!     .field("alt", 320.5f32)
//!     .build()?;
//!
//! fix.conforms_to(&position_ty)?;
//! assert_eq!(fix.at("lat").and_then(Value::as_f64), Some(41.27641));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod error;
mod name;
mod path;
mod schema;
#[cfg(feature = "testkit")]
pub mod testkit;
mod types;
mod value;

pub use convert::{
    ArgsCodec, ArgsSchema, EventPayload, FnRet, FromArgs, FromValue, HasDataType, IntoArgs,
    IntoValue, TypeMismatch, ValueCodec,
};
pub use error::{InvalidNameError, PathError, TypeError, TypeErrorKind};
pub use name::Name;
pub use path::{PathSegment, ValuePath};
pub use schema::{Schema, SchemaRegistry};
pub use types::{DataType, FieldDef, StructType, TypeKind, UnionType, VectorType};
pub use value::{StructBuilder, StructValue, UnionValue, Value, VectorValue};
