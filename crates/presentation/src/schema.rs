//! Named schemas and per-container schema registries.
//!
//! A [`Schema`] binds a [`Name`] to a [`DataType`]; the [`SchemaRegistry`]
//! is the container-local catalogue of every variable/event/function
//! signature a node knows about. During middleware initialization services
//! declare what they provide and what they require; the registry is what the
//! container consults to verify that "all the functions they need ... are
//! provided by one or more services available in the network" (paper §4.3).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::InvalidNameError;
use crate::name::Name;
use crate::types::DataType;
use crate::value::Value;
use crate::TypeError;

/// A named data type: the declared shape of one variable, event payload or
/// function parameter list.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    name: Name,
    ty: DataType,
}

impl Schema {
    /// Creates a schema.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNameError`] if `name` is not a valid [`Name`].
    pub fn new(name: impl AsRef<str>, ty: DataType) -> Result<Self, InvalidNameError> {
        Ok(Schema { name: Name::new(name)?, ty })
    }

    /// Schema name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// The declared type.
    pub fn ty(&self) -> &DataType {
        &self.ty
    }

    /// Checks a value against this schema.
    ///
    /// # Errors
    ///
    /// Returns the [`TypeError`] produced by
    /// [`Value::conforms_to`].
    pub fn check(&self, value: &Value) -> Result<(), TypeError> {
        value.conforms_to(&self.ty)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.name, self.ty)
    }
}

/// A catalogue of named schemas with last-writer-wins registration.
///
/// Iteration order is deterministic (sorted by name) so that discovery
/// announcements built from a registry are reproducible across runs — a
/// requirement for the deterministic simulation used in tests and benches.
#[derive(Debug, Clone, Default)]
pub struct SchemaRegistry {
    entries: BTreeMap<Name, Schema>,
}

impl SchemaRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        SchemaRegistry::default()
    }

    /// Registers a schema, returning the previous one under the same name,
    /// if any.
    pub fn register(&mut self, schema: Schema) -> Option<Schema> {
        self.entries.insert(schema.name.clone(), schema)
    }

    /// Convenience: build and register in one call.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNameError`] if `name` is invalid.
    pub fn declare(
        &mut self,
        name: impl AsRef<str>,
        ty: DataType,
    ) -> Result<Option<Schema>, InvalidNameError> {
        Ok(self.register(Schema::new(name, ty)?))
    }

    /// Looks up a schema by name.
    pub fn get(&self, name: &str) -> Option<&Schema> {
        self.entries.get(name)
    }

    /// `true` if a schema is registered under `name`.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Removes a schema by name, returning it.
    pub fn remove(&mut self, name: &str) -> Option<Schema> {
        self.entries.remove(name)
    }

    /// Number of registered schemas.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over schemas sorted by name.
    pub fn iter(&self) -> impl Iterator<Item = &Schema> {
        self.entries.values()
    }

    /// Checks `value` against the schema registered under `name`.
    ///
    /// # Errors
    ///
    /// Returns `Ok(false)` when no schema is registered under `name` (the
    /// caller decides whether unknown names are fatal); returns a
    /// [`TypeError`] when the schema exists and the value violates it.
    pub fn check(&self, name: &str, value: &Value) -> Result<bool, TypeError> {
        match self.get(name) {
            Some(schema) => schema.check(value).map(|()| true),
            None => Ok(false),
        }
    }
}

impl FromIterator<Schema> for SchemaRegistry {
    fn from_iter<I: IntoIterator<Item = Schema>>(iter: I) -> Self {
        let mut reg = SchemaRegistry::new();
        for s in iter {
            reg.register(s);
        }
        reg
    }
}

impl Extend<Schema> for SchemaRegistry {
    fn extend<I: IntoIterator<Item = Schema>>(&mut self, iter: I) {
        for s in iter {
            self.register(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::StructType;

    fn position_schema() -> Schema {
        Schema::new(
            "gps/position",
            DataType::Struct(
                StructType::new("Position")
                    .with_field("lat", DataType::F64)
                    .unwrap()
                    .with_field("lon", DataType::F64)
                    .unwrap(),
            ),
        )
        .unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = SchemaRegistry::new();
        assert!(reg.is_empty());
        reg.register(position_schema());
        assert!(reg.contains("gps/position"));
        assert_eq!(reg.len(), 1);
        assert_eq!(reg.get("gps/position").unwrap().name(), "gps/position");
        assert!(reg.get("missing").is_none());
    }

    #[test]
    fn re_registration_replaces() {
        let mut reg = SchemaRegistry::new();
        reg.declare("x", DataType::Bool).unwrap();
        let old = reg.declare("x", DataType::I32).unwrap();
        assert_eq!(old.unwrap().ty(), &DataType::Bool);
        assert_eq!(reg.get("x").unwrap().ty(), &DataType::I32);
    }

    #[test]
    fn check_dispatches_by_name() {
        let mut reg = SchemaRegistry::new();
        reg.register(position_schema());
        let ok = Value::struct_of("Position").field("lat", 1.0).field("lon", 2.0).build().unwrap();
        assert!(reg.check("gps/position", &ok).unwrap());
        assert!(!reg.check("unknown", &ok).unwrap(), "unknown names are Ok(false)");
        let bad = Value::Bool(true);
        assert!(reg.check("gps/position", &bad).is_err());
    }

    #[test]
    fn iteration_is_sorted_by_name() {
        let mut reg = SchemaRegistry::new();
        reg.declare("zeta", DataType::Bool).unwrap();
        reg.declare("alpha", DataType::Bool).unwrap();
        reg.declare("mid", DataType::Bool).unwrap();
        let names: Vec<_> = reg.iter().map(|s| s.name().to_string()).collect();
        assert_eq!(names, ["alpha", "mid", "zeta"]);
    }

    #[test]
    fn collect_from_iterator() {
        let reg: SchemaRegistry =
            vec![position_schema(), Schema::new("alt", DataType::F32).unwrap()]
                .into_iter()
                .collect();
        assert_eq!(reg.len(), 2);
    }
}
