//! The C-like schema language (paper §4.1).
//!
//! A [`DataType`] describes the shape of the data a service publishes or
//! accepts: basic scalar types, character strings, raw byte blobs and the
//! three composition mechanisms of the paper — vectors (fixed or variable
//! length), structs (ordered named fields) and unions (tagged alternatives).

use std::fmt;

use crate::error::{InvalidNameError, TypeError, TypeErrorKind};
use crate::name::Name;

/// Coarse classification of a type or value, used in error reporting and by
/// the self-describing codec's wire tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)] // variants mirror DataType one-to-one
pub enum TypeKind {
    Bool,
    I8,
    I16,
    I32,
    I64,
    U8,
    U16,
    U32,
    U64,
    F32,
    F64,
    Char,
    Str,
    Bytes,
    Vector,
    Struct,
    Union,
}

impl TypeKind {
    /// All kinds, in wire-tag order. The discriminant of each kind in this
    /// slice is stable and is what the self-describing codec writes.
    pub const ALL: [TypeKind; 17] = [
        TypeKind::Bool,
        TypeKind::I8,
        TypeKind::I16,
        TypeKind::I32,
        TypeKind::I64,
        TypeKind::U8,
        TypeKind::U16,
        TypeKind::U32,
        TypeKind::U64,
        TypeKind::F32,
        TypeKind::F64,
        TypeKind::Char,
        TypeKind::Str,
        TypeKind::Bytes,
        TypeKind::Vector,
        TypeKind::Struct,
        TypeKind::Union,
    ];

    /// Stable wire tag for this kind.
    pub fn wire_tag(self) -> u8 {
        Self::ALL.iter().position(|k| *k == self).expect("kind present in ALL") as u8
    }

    /// Inverse of [`TypeKind::wire_tag`].
    pub fn from_wire_tag(tag: u8) -> Option<TypeKind> {
        Self::ALL.get(tag as usize).copied()
    }

    /// `true` for scalar kinds (everything except vector/struct/union).
    pub fn is_scalar(self) -> bool {
        !matches!(self, TypeKind::Vector | TypeKind::Struct | TypeKind::Union)
    }
}

impl fmt::Display for TypeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TypeKind::Bool => "bool",
            TypeKind::I8 => "i8",
            TypeKind::I16 => "i16",
            TypeKind::I32 => "i32",
            TypeKind::I64 => "i64",
            TypeKind::U8 => "u8",
            TypeKind::U16 => "u16",
            TypeKind::U32 => "u32",
            TypeKind::U64 => "u64",
            TypeKind::F32 => "f32",
            TypeKind::F64 => "f64",
            TypeKind::Char => "char",
            TypeKind::Str => "str",
            TypeKind::Bytes => "bytes",
            TypeKind::Vector => "vector",
            TypeKind::Struct => "struct",
            TypeKind::Union => "union",
        };
        f.write_str(s)
    }
}

/// A named field of a [`StructType`] or alternative of a [`UnionType`].
#[derive(Debug, Clone, PartialEq)]
pub struct FieldDef {
    name: Name,
    ty: DataType,
}

impl FieldDef {
    /// Creates a field definition.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNameError`] if `name` is not a valid [`Name`].
    pub fn new(name: impl AsRef<str>, ty: DataType) -> Result<Self, InvalidNameError> {
        Ok(FieldDef { name: Name::new(name)?, ty })
    }

    /// Field name.
    pub fn name(&self) -> &Name {
        &self.name
    }

    /// Field type.
    pub fn ty(&self) -> &DataType {
        &self.ty
    }
}

/// A vector (sequence) type: element type plus optional fixed length.
///
/// `Vector(F64, Some(3))` models a C `double[3]`; `Vector(U8, None)` a
/// variable-length byte sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct VectorType {
    elem: Box<DataType>,
    len: Option<usize>,
}

impl VectorType {
    /// Variable-length vector of `elem`.
    pub fn of(elem: DataType) -> Self {
        VectorType { elem: Box::new(elem), len: None }
    }

    /// Fixed-length vector of exactly `len` elements of `elem`.
    pub fn fixed(elem: DataType, len: usize) -> Self {
        VectorType { elem: Box::new(elem), len: Some(len) }
    }

    /// Element type.
    pub fn elem(&self) -> &DataType {
        &self.elem
    }

    /// Required length, if this is a fixed-length vector.
    pub fn fixed_len(&self) -> Option<usize> {
        self.len
    }
}

/// An ordered sequence of named, typed fields.
///
/// Field order is significant: the compact codec encodes structs
/// positionally, so both ends must agree on the declaration order. Field
/// names are unique.
#[derive(Debug, Clone, PartialEq)]
pub struct StructType {
    name: Option<Name>,
    fields: Vec<FieldDef>,
}

impl StructType {
    /// Creates an empty struct type with the given (non-wire, documentation)
    /// name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`Name`]; use
    /// [`StructType::anonymous`] + [`StructType::with_field`] with runtime
    /// names if the name is not a literal.
    pub fn new(name: &str) -> Self {
        StructType {
            name: Some(Name::new(name).expect("struct type name must be a valid name literal")),
            fields: Vec::new(),
        }
    }

    /// Creates an empty anonymous struct type.
    pub fn anonymous() -> Self {
        StructType { name: None, fields: Vec::new() }
    }

    /// Appends a field, consuming and returning the type (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNameError`] if `name` is invalid. Duplicate field
    /// names are rejected with the same error type.
    pub fn with_field(mut self, name: &str, ty: DataType) -> Result<Self, InvalidNameError> {
        let def = FieldDef::new(name, ty)?;
        if self.field(def.name().as_str()).is_some() {
            return Err(InvalidNameError {
                offending: name.to_owned(),
                reason: "duplicate field name in struct type",
            });
        }
        self.fields.push(def);
        Ok(self)
    }

    /// Documentation name of the struct, if any.
    pub fn name(&self) -> Option<&Name> {
        self.name.as_ref()
    }

    /// Fields in declaration order.
    pub fn fields(&self) -> &[FieldDef] {
        &self.fields
    }

    /// Looks up a field by name.
    pub fn field(&self, name: &str) -> Option<&FieldDef> {
        self.fields.iter().find(|f| f.name() == name)
    }

    /// Index of a field in declaration order.
    pub fn field_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name() == name)
    }
}

/// A tagged union: exactly one of the declared alternatives is present.
#[derive(Debug, Clone, PartialEq)]
pub struct UnionType {
    name: Option<Name>,
    alternatives: Vec<FieldDef>,
}

impl UnionType {
    /// Creates an empty union type with a documentation name.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not a valid [`Name`] literal.
    pub fn new(name: &str) -> Self {
        UnionType {
            name: Some(Name::new(name).expect("union type name must be a valid name literal")),
            alternatives: Vec::new(),
        }
    }

    /// Creates an empty anonymous union type.
    pub fn anonymous() -> Self {
        UnionType { name: None, alternatives: Vec::new() }
    }

    /// Appends an alternative (builder style).
    ///
    /// # Errors
    ///
    /// Returns [`InvalidNameError`] on invalid or duplicate alternative
    /// names.
    pub fn with_alternative(mut self, name: &str, ty: DataType) -> Result<Self, InvalidNameError> {
        let def = FieldDef::new(name, ty)?;
        if self.alternative(def.name().as_str()).is_some() {
            return Err(InvalidNameError {
                offending: name.to_owned(),
                reason: "duplicate alternative name in union type",
            });
        }
        self.alternatives.push(def);
        Ok(self)
    }

    /// Documentation name of the union, if any.
    pub fn name(&self) -> Option<&Name> {
        self.name.as_ref()
    }

    /// Alternatives in declaration order. The index of an alternative is its
    /// wire discriminant.
    pub fn alternatives(&self) -> &[FieldDef] {
        &self.alternatives
    }

    /// Looks up an alternative by name.
    pub fn alternative(&self, name: &str) -> Option<&FieldDef> {
        self.alternatives.iter().find(|f| f.name() == name)
    }

    /// Discriminant (declaration index) of an alternative.
    pub fn discriminant(&self, name: &str) -> Option<u32> {
        self.alternatives.iter().position(|f| f.name() == name).map(|i| i as u32)
    }
}

/// A MAREA data type: the schema of a variable, event payload, function
/// parameter or metadata record.
///
/// # Examples
///
/// ```
/// use marea_presentation::{DataType, StructType, VectorType};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // struct Waypoint { lat: f64, lon: f64, actions: vector<u8> }
/// let waypoint = DataType::Struct(
///     StructType::new("Waypoint")
///         .with_field("lat", DataType::F64)?
///         .with_field("lon", DataType::F64)?
///         .with_field("actions", DataType::Vector(VectorType::of(DataType::U8)))?,
/// );
/// assert_eq!(waypoint.kind().to_string(), "struct");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum DataType {
    /// Boolean.
    Bool,
    /// Signed 8-bit integer.
    I8,
    /// Signed 16-bit integer.
    I16,
    /// Signed 32-bit integer.
    I32,
    /// Signed 64-bit integer.
    I64,
    /// Unsigned 8-bit integer.
    U8,
    /// Unsigned 16-bit integer.
    U16,
    /// Unsigned 32-bit integer.
    U32,
    /// Unsigned 64-bit integer.
    U64,
    /// IEEE-754 single-precision float.
    F32,
    /// IEEE-754 double-precision float.
    F64,
    /// Unicode scalar value.
    Char,
    /// UTF-8 character string.
    Str,
    /// Raw byte blob (images, compressed chunks, opaque payloads).
    Bytes,
    /// Sequence of homogeneous elements.
    Vector(VectorType),
    /// Ordered named fields.
    Struct(StructType),
    /// Tagged alternative.
    Union(UnionType),
}

impl DataType {
    /// The coarse kind of this type.
    pub fn kind(&self) -> TypeKind {
        match self {
            DataType::Bool => TypeKind::Bool,
            DataType::I8 => TypeKind::I8,
            DataType::I16 => TypeKind::I16,
            DataType::I32 => TypeKind::I32,
            DataType::I64 => TypeKind::I64,
            DataType::U8 => TypeKind::U8,
            DataType::U16 => TypeKind::U16,
            DataType::U32 => TypeKind::U32,
            DataType::U64 => TypeKind::U64,
            DataType::F32 => TypeKind::F32,
            DataType::F64 => TypeKind::F64,
            DataType::Char => TypeKind::Char,
            DataType::Str => TypeKind::Str,
            DataType::Bytes => TypeKind::Bytes,
            DataType::Vector(_) => TypeKind::Vector,
            DataType::Struct(_) => TypeKind::Struct,
            DataType::Union(_) => TypeKind::Union,
        }
    }

    /// `true` if this is a scalar (non-composite) type.
    pub fn is_scalar(&self) -> bool {
        self.kind().is_scalar()
    }

    /// Nesting depth of the type: scalars are 1, composites are one more
    /// than their deepest component. Useful for enforcing the resource
    /// limits a service container imposes on low-end nodes.
    pub fn depth(&self) -> usize {
        match self {
            DataType::Vector(v) => 1 + v.elem().depth(),
            DataType::Struct(s) => 1 + s.fields().iter().map(|f| f.ty().depth()).max().unwrap_or(0),
            DataType::Union(u) => {
                1 + u.alternatives().iter().map(|f| f.ty().depth()).max().unwrap_or(0)
            }
            _ => 1,
        }
    }

    /// A quick structural-compatibility check used by the directory when a
    /// subscriber's expected type must match a publisher's declared type.
    ///
    /// Two types are compatible when they have the same kind and their
    /// components are recursively compatible; struct/union *type names* are
    /// ignored (structural typing), but field names, field order and fixed
    /// vector lengths must match.
    pub fn is_compatible_with(&self, other: &DataType) -> bool {
        match (self, other) {
            (DataType::Vector(a), DataType::Vector(b)) => {
                a.fixed_len() == b.fixed_len() && a.elem().is_compatible_with(b.elem())
            }
            (DataType::Struct(a), DataType::Struct(b)) => {
                a.fields().len() == b.fields().len()
                    && a.fields()
                        .iter()
                        .zip(b.fields())
                        .all(|(x, y)| x.name() == y.name() && x.ty().is_compatible_with(y.ty()))
            }
            (DataType::Union(a), DataType::Union(b)) => {
                a.alternatives().len() == b.alternatives().len()
                    && a.alternatives()
                        .iter()
                        .zip(b.alternatives())
                        .all(|(x, y)| x.name() == y.name() && x.ty().is_compatible_with(y.ty()))
            }
            (a, b) => a.kind() == b.kind(),
        }
    }

    pub(crate) fn kind_mismatch(&self, found: TypeKind) -> TypeError {
        TypeError::new(TypeErrorKind::KindMismatch { expected: self.kind(), found })
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Vector(v) => match v.fixed_len() {
                Some(n) => write!(f, "vector<{}, {n}>", v.elem()),
                None => write!(f, "vector<{}>", v.elem()),
            },
            DataType::Struct(s) => {
                match s.name() {
                    Some(n) => write!(f, "struct {n} {{ ")?,
                    None => write!(f, "struct {{ ")?,
                }
                for (i, field) in s.fields().iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}: {}", field.name(), field.ty())?;
                }
                write!(f, " }}")
            }
            DataType::Union(u) => {
                match u.name() {
                    Some(n) => write!(f, "union {n} {{ ")?,
                    None => write!(f, "union {{ ")?,
                }
                for (i, alt) in u.alternatives().iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    write!(f, "{}: {}", alt.name(), alt.ty())?;
                }
                write!(f, " }}")
            }
            scalar => write!(f, "{}", scalar.kind()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn position() -> DataType {
        DataType::Struct(
            StructType::new("Position")
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("lon", DataType::F64)
                .unwrap()
                .with_field("alt", DataType::F32)
                .unwrap(),
        )
    }

    #[test]
    fn wire_tags_roundtrip() {
        for kind in TypeKind::ALL {
            assert_eq!(TypeKind::from_wire_tag(kind.wire_tag()), Some(kind));
        }
        assert_eq!(TypeKind::from_wire_tag(200), None);
    }

    #[test]
    fn struct_rejects_duplicate_fields() {
        let err = StructType::new("S")
            .with_field("a", DataType::Bool)
            .unwrap()
            .with_field("a", DataType::I32);
        assert!(err.is_err());
    }

    #[test]
    fn union_discriminants_follow_declaration_order() {
        let u = UnionType::new("Alarm")
            .with_alternative("engine", DataType::U8)
            .unwrap()
            .with_alternative("link_loss", DataType::U16)
            .unwrap();
        assert_eq!(u.discriminant("engine"), Some(0));
        assert_eq!(u.discriminant("link_loss"), Some(1));
        assert_eq!(u.discriminant("absent"), None);
    }

    #[test]
    fn depth_counts_nesting() {
        assert_eq!(DataType::Bool.depth(), 1);
        assert_eq!(position().depth(), 2);
        let nested = DataType::Vector(VectorType::of(position()));
        assert_eq!(nested.depth(), 3);
    }

    #[test]
    fn compatibility_is_structural() {
        let a = position();
        let b = DataType::Struct(
            StructType::new("Renamed") // different name, same structure
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("lon", DataType::F64)
                .unwrap()
                .with_field("alt", DataType::F32)
                .unwrap(),
        );
        assert!(a.is_compatible_with(&b));

        let reordered = DataType::Struct(
            StructType::new("Position")
                .with_field("lon", DataType::F64)
                .unwrap()
                .with_field("lat", DataType::F64)
                .unwrap()
                .with_field("alt", DataType::F32)
                .unwrap(),
        );
        assert!(!a.is_compatible_with(&reordered), "field order matters on the wire");
    }

    #[test]
    fn fixed_vector_lengths_must_match() {
        let a = DataType::Vector(VectorType::fixed(DataType::F32, 3));
        let b = DataType::Vector(VectorType::fixed(DataType::F32, 4));
        let c = DataType::Vector(VectorType::of(DataType::F32));
        assert!(!a.is_compatible_with(&b));
        assert!(!a.is_compatible_with(&c));
        assert!(a.is_compatible_with(&a.clone()));
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(position().to_string(), "struct Position { lat: f64, lon: f64, alt: f32 }");
        let v = DataType::Vector(VectorType::fixed(DataType::U8, 16));
        assert_eq!(v.to_string(), "vector<u8, 16>");
    }
}
