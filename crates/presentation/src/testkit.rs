//! Proptest strategies for generating schema/value pairs.
//!
//! Enabled with the `testkit` feature; used by the encoding and protocol
//! crates to property-test codec roundtrips against *arbitrary conforming*
//! values, not just hand-picked fixtures.

use proptest::prelude::*;

use crate::name::Name;
use crate::types::{DataType, StructType, UnionType, VectorType};
use crate::value::{UnionValue, Value, VectorValue};

/// Strategy for valid MAREA names (short, lowercase).
pub fn arb_name() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,8}".prop_map(|s| s)
}

/// Strategy for scalar data types.
pub fn arb_scalar_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        Just(DataType::Bool),
        Just(DataType::I8),
        Just(DataType::I16),
        Just(DataType::I32),
        Just(DataType::I64),
        Just(DataType::U8),
        Just(DataType::U16),
        Just(DataType::U32),
        Just(DataType::U64),
        Just(DataType::F32),
        Just(DataType::F64),
        Just(DataType::Char),
        Just(DataType::Str),
        Just(DataType::Bytes),
    ]
}

/// Strategy for arbitrary data types up to `depth` levels of nesting.
pub fn arb_data_type(depth: u32) -> BoxedStrategy<DataType> {
    arb_scalar_type()
        .prop_recursive(depth, 24, 4, |inner| {
            prop_oneof![
                // Variable-length vectors.
                inner.clone().prop_map(|t| DataType::Vector(VectorType::of(t))),
                // Fixed-length vectors.
                (inner.clone(), 0usize..4)
                    .prop_map(|(t, n)| { DataType::Vector(VectorType::fixed(t, n)) }),
                // Structs with 1..4 uniquely named fields.
                (
                    proptest::collection::btree_set(arb_name(), 1..4),
                    proptest::collection::vec(inner.clone(), 4)
                )
                    .prop_map(|(names, types)| {
                        let mut st = StructType::anonymous();
                        for (name, ty) in names.into_iter().zip(types) {
                            st = st.with_field(&name, ty).expect("unique valid names");
                        }
                        DataType::Struct(st)
                    }),
                // Unions with 1..4 uniquely named alternatives.
                (
                    proptest::collection::btree_set(arb_name(), 1..4),
                    proptest::collection::vec(inner, 4)
                )
                    .prop_map(|(names, types)| {
                        let mut ut = UnionType::anonymous();
                        for (name, ty) in names.into_iter().zip(types) {
                            ut = ut.with_alternative(&name, ty).expect("unique valid names");
                        }
                        DataType::Union(ut)
                    }),
            ]
        })
        .boxed()
}

/// Strategy for values conforming to a given data type.
pub fn arb_value_of(ty: &DataType) -> BoxedStrategy<Value> {
    match ty {
        DataType::Bool => any::<bool>().prop_map(Value::Bool).boxed(),
        DataType::I8 => any::<i8>().prop_map(Value::I8).boxed(),
        DataType::I16 => any::<i16>().prop_map(Value::I16).boxed(),
        DataType::I32 => any::<i32>().prop_map(Value::I32).boxed(),
        DataType::I64 => any::<i64>().prop_map(Value::I64).boxed(),
        DataType::U8 => any::<u8>().prop_map(Value::U8).boxed(),
        DataType::U16 => any::<u16>().prop_map(Value::U16).boxed(),
        DataType::U32 => any::<u32>().prop_map(Value::U32).boxed(),
        DataType::U64 => any::<u64>().prop_map(Value::U64).boxed(),
        DataType::F32 => any::<f32>().prop_map(Value::F32).boxed(),
        DataType::F64 => any::<f64>().prop_map(Value::F64).boxed(),
        DataType::Char => any::<char>().prop_map(Value::Char).boxed(),
        DataType::Str => any::<String>().prop_map(Value::Str).boxed(),
        DataType::Bytes => {
            proptest::collection::vec(any::<u8>(), 0..64).prop_map(Value::Bytes).boxed()
        }
        DataType::Vector(vt) => {
            let elem_ty = vt.elem().clone();
            let range = match vt.fixed_len() {
                Some(n) => n..=n,
                None => 0..=3,
            };
            proptest::collection::vec(arb_value_of(vt.elem()), range)
                .prop_map(move |items| {
                    Value::Vector(
                        VectorValue::new(elem_ty.clone(), items).expect("elements conform"),
                    )
                })
                .boxed()
        }
        DataType::Struct(st) => {
            let names: Vec<Name> = st.fields().iter().map(|f| f.name().clone()).collect();
            let field_strategies: Vec<BoxedStrategy<Value>> =
                st.fields().iter().map(|f| arb_value_of(f.ty())).collect();
            field_strategies
                .prop_map(move |values| {
                    let mut b = crate::value::StructBuilder::anonymous();
                    for (name, value) in names.iter().zip(values) {
                        b = b.field(name.as_str(), value);
                    }
                    b.build().expect("valid field names")
                })
                .boxed()
        }
        DataType::Union(ut) => {
            let alts = ut.alternatives().to_vec();
            assert!(!alts.is_empty(), "generated unions always have alternatives");
            (0..alts.len())
                .prop_flat_map(move |i| {
                    let alt = alts[i].clone();
                    arb_value_of(alt.ty()).prop_map(move |v| {
                        Value::Union(
                            UnionValue::new(i as u32, alt.name().as_str(), v)
                                .expect("valid alternative name"),
                        )
                    })
                })
                .boxed()
        }
    }
}

/// Strategy producing a `(type, conforming value)` pair.
pub fn arb_typed_value(depth: u32) -> BoxedStrategy<(DataType, Value)> {
    arb_data_type(depth)
        .prop_flat_map(|ty| {
            let value = arb_value_of(&ty);
            (Just(ty), value)
        })
        .boxed()
}
