//! Error types for the presentation layer.

use std::error::Error;
use std::fmt;

use crate::types::TypeKind;

/// Error returned when a string is not a valid MAREA [`Name`](crate::Name).
///
/// Names identify services, variables, events, functions and file resources
/// across the whole distributed system, so they are restricted to a portable
/// subset: non-empty, at most [`InvalidNameError::MAX_LEN`] bytes, ASCII
/// letters/digits plus `._-/`, and they must start with a letter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidNameError {
    pub(crate) offending: String,
    pub(crate) reason: &'static str,
}

impl InvalidNameError {
    /// Maximum accepted name length in bytes.
    pub const MAX_LEN: usize = 128;

    /// The string that failed validation.
    pub fn offending(&self) -> &str {
        &self.offending
    }

    /// Human-readable reason for the rejection.
    pub fn reason(&self) -> &'static str {
        self.reason
    }
}

impl fmt::Display for InvalidNameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid name {:?}: {}", self.offending, self.reason)
    }
}

impl Error for InvalidNameError {}

/// The specific way in which a [`Value`](crate::Value) failed to conform to a
/// [`DataType`](crate::DataType).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeErrorKind {
    /// The value has a different kind than the type requires.
    KindMismatch {
        /// Kind required by the schema.
        expected: TypeKind,
        /// Kind carried by the value.
        found: TypeKind,
    },
    /// A struct value is missing a field required by the schema.
    MissingField {
        /// Name of the missing field.
        field: String,
    },
    /// A struct value carries a field the schema does not declare.
    UnknownField {
        /// Name of the unexpected field.
        field: String,
    },
    /// A struct value repeats a field name.
    DuplicateField {
        /// Name of the duplicated field.
        field: String,
    },
    /// Struct fields appear in a different order than the schema declares.
    ///
    /// Field order is significant because the compact codec encodes structs
    /// positionally (paper §6: encoding describes the representation of data
    /// *on the wire*).
    FieldOrder {
        /// Name of the out-of-place field.
        field: String,
    },
    /// A fixed-length vector has the wrong number of elements.
    VectorLength {
        /// Length required by the schema.
        expected: usize,
        /// Length of the value.
        found: usize,
    },
    /// A union value selected an alternative the schema does not declare.
    UnknownAlternative {
        /// Name of the unknown alternative.
        alternative: String,
    },
    /// A union discriminant does not match the named alternative's index.
    DiscriminantMismatch {
        /// Discriminant stored in the value.
        found: u32,
        /// Discriminant the schema assigns to that alternative.
        expected: u32,
    },
}

impl fmt::Display for TypeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeErrorKind::KindMismatch { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            TypeErrorKind::MissingField { field } => write!(f, "missing field `{field}`"),
            TypeErrorKind::UnknownField { field } => write!(f, "unknown field `{field}`"),
            TypeErrorKind::DuplicateField { field } => write!(f, "duplicate field `{field}`"),
            TypeErrorKind::FieldOrder { field } => {
                write!(f, "field `{field}` out of schema order")
            }
            TypeErrorKind::VectorLength { expected, found } => {
                write!(f, "expected vector of length {expected}, found {found}")
            }
            TypeErrorKind::UnknownAlternative { alternative } => {
                write!(f, "unknown union alternative `{alternative}`")
            }
            TypeErrorKind::DiscriminantMismatch { found, expected } => {
                write!(f, "union discriminant {found} does not match alternative index {expected}")
            }
        }
    }
}

/// Error produced when a [`Value`](crate::Value) does not conform to a
/// [`DataType`](crate::DataType).
///
/// Carries the *location* of the mismatch as a dotted/indexed path (e.g.
/// `waypoints[3].alt`) so that mission developers can locate schema bugs in
/// deeply nested telemetry records.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    pub(crate) kind: TypeErrorKind,
    pub(crate) location: String,
}

impl TypeError {
    /// Creates a type error at the root location.
    pub fn new(kind: TypeErrorKind) -> Self {
        TypeError { kind, location: String::new() }
    }

    /// What went wrong.
    pub fn kind(&self) -> &TypeErrorKind {
        &self.kind
    }

    /// Path within the value where the mismatch occurred (empty = root).
    pub fn location(&self) -> &str {
        &self.location
    }

    /// Returns the same error re-rooted under a struct field.
    pub(crate) fn in_field(mut self, field: &str) -> Self {
        if self.location.is_empty() {
            self.location = field.to_owned();
        } else {
            self.location = format!("{field}.{}", self.location);
        }
        self
    }

    /// Returns the same error re-rooted under a vector index.
    pub(crate) fn at_index(mut self, index: usize) -> Self {
        if self.location.is_empty() {
            self.location = format!("[{index}]");
        } else if self.location.starts_with('[') {
            self.location = format!("[{index}]{}", self.location);
        } else {
            self.location = format!("[{index}].{}", self.location);
        }
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.location.is_empty() {
            write!(f, "type mismatch: {}", self.kind)
        } else {
            write!(f, "type mismatch at `{}`: {}", self.location, self.kind)
        }
    }
}

impl Error for TypeError {}

/// Error returned when parsing or applying a [`ValuePath`](crate::ValuePath).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathError {
    /// The textual path could not be parsed.
    Syntax {
        /// Byte offset of the first offending character.
        at: usize,
        /// Description of the problem.
        reason: &'static str,
    },
    /// The path is syntactically valid but empty.
    Empty,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PathError::Syntax { at, reason } => {
                write!(f, "invalid value path at byte {at}: {reason}")
            }
            PathError::Empty => write!(f, "empty value path"),
        }
    }
}

impl Error for PathError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_error_locations_compose() {
        let e = TypeError::new(TypeErrorKind::KindMismatch {
            expected: TypeKind::F64,
            found: TypeKind::Bool,
        });
        let e = e.in_field("alt").at_index(3).in_field("waypoints");
        assert_eq!(e.location(), "waypoints.[3].alt");
        let shown = e.to_string();
        assert!(shown.contains("waypoints"), "{shown}");
        assert!(shown.contains("expected f64"), "{shown}");
    }

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = TypeError::new(TypeErrorKind::MissingField { field: "lat".into() });
        assert_eq!(e.to_string(), "type mismatch: missing field `lat`");
    }

    #[test]
    fn invalid_name_reports_offender() {
        let e = InvalidNameError { offending: "9bad".into(), reason: "must start with a letter" };
        assert!(e.to_string().contains("9bad"));
        assert_eq!(e.reason(), "must start with a letter");
    }
}
