//! Typed conversions between Rust values and the MAREA data model.
//!
//! The dynamic [`Value`] / [`DataType`] pair keeps the *wire* contract
//! flexible, but services should not have to build and pick apart dynamic
//! values by hand. This module is the static face of the same contract:
//!
//! * [`HasDataType`] — the Rust type's canonical MAREA schema;
//! * [`IntoValue`] / [`FromValue`] — lossless conversion to and from
//!   [`Value`], with a structured [`TypeMismatch`] error instead of a
//!   silent drop when the dynamic value disagrees with the schema;
//! * [`ValueCodec`] — the pair of the above, automatically implemented; the
//!   bound typed service ports require;
//! * [`IntoArgs`] / [`FromArgs`] / [`ArgsCodec`] — the same for function
//!   *argument lists*, implemented by tuples (arity 0–6);
//! * [`EventPayload`] — event payloads: any codec type, `()` for bare
//!   events, `Option<T>` for optional payloads;
//! * [`FnRet`] — function return values: any codec type or `()` for void.
//!
//! All scalar Rust types with a `DataType` mapping implement the codec
//! traits; composite application records (structs over the wire) implement
//! them manually — see `marea-services`' `names` module for examples.

use std::error::Error;
use std::fmt;

use crate::types::{DataType, TypeKind};
use crate::value::Value;

/// A dynamic value disagreed with the schema a typed endpoint declared.
///
/// Unlike a plain [`TypeError`](crate::TypeError), this error pairs the
/// *declared* schema with the *observed* value kind, which is the
/// information a service needs to log a useful diagnostic when a peer (or
/// the compat string API) sends the wrong shape.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeMismatch {
    expected: Option<DataType>,
    found: Option<TypeKind>,
    detail: Option<String>,
}

impl TypeMismatch {
    /// A value of kind `found` arrived where `expected` was declared.
    pub fn new(expected: DataType, found: TypeKind) -> Self {
        TypeMismatch { expected: Some(expected), found: Some(found), detail: None }
    }

    /// No value arrived where `expected` was declared (e.g. a bare event
    /// on a channel declared with a payload).
    pub fn missing(expected: DataType) -> Self {
        TypeMismatch { expected: Some(expected), found: None, detail: None }
    }

    /// An argument list arrived with the wrong number of arguments — a
    /// shape disagreement with no single schema to blame.
    pub fn arity(expected: usize, found: usize) -> Self {
        TypeMismatch {
            expected: None,
            found: None,
            detail: Some(format!("expected {expected} arguments, got {found}")),
        }
    }

    /// Attaches a human-readable detail (e.g. the field-level location of
    /// a mismatch inside a struct).
    #[must_use]
    pub fn with_detail(mut self, detail: impl Into<String>) -> Self {
        self.detail = Some(detail.into());
        self
    }

    /// The schema the typed endpoint declared (`None` for shape-level
    /// disagreements such as argument arity, where no single schema
    /// applies).
    pub fn expected(&self) -> Option<&DataType> {
        self.expected.as_ref()
    }

    /// The kind of value that actually arrived (`None` = nothing arrived).
    pub fn found(&self) -> Option<TypeKind> {
        self.found
    }

    /// Extra location/context detail, if any.
    pub fn detail(&self) -> Option<&str> {
        self.detail.as_deref()
    }
}

impl fmt::Display for TypeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.expected, self.found) {
            (Some(expected), Some(found)) => {
                write!(f, "type mismatch: expected {expected}, found {found}")?
            }
            (Some(expected), None) => {
                write!(f, "type mismatch: expected {expected}, found no payload")?
            }
            (None, _) => write!(f, "type mismatch")?,
        }
        if let Some(detail) = &self.detail {
            write!(f, " ({detail})")?;
        }
        Ok(())
    }
}

impl Error for TypeMismatch {}

/// Rust types with a canonical MAREA schema.
pub trait HasDataType {
    /// The [`DataType`] values of this type conform to.
    fn data_type() -> DataType;
}

/// Conversion *into* a dynamic [`Value`] conforming to
/// [`HasDataType::data_type`].
pub trait IntoValue: HasDataType {
    /// Converts `self` into the dynamic representation.
    fn into_value(self) -> Value;
}

/// Conversion *from* a dynamic [`Value`] checked against
/// [`HasDataType::data_type`].
pub trait FromValue: HasDataType + Sized {
    /// Converts a dynamic value back, surfacing a structured
    /// [`TypeMismatch`] when the value does not match the schema.
    fn from_value(value: &Value) -> Result<Self, TypeMismatch>;
}

/// Bidirectional value conversion — the bound the typed ports require.
///
/// Automatically implemented for every `IntoValue + FromValue` type.
pub trait ValueCodec: IntoValue + FromValue {}

impl<T: IntoValue + FromValue> ValueCodec for T {}

macro_rules! impl_scalar_codec {
    ($($t:ty => $variant:ident / $dt:expr),* $(,)?) => {
        $(
            impl HasDataType for $t {
                fn data_type() -> DataType {
                    $dt
                }
            }

            impl IntoValue for $t {
                fn into_value(self) -> Value {
                    Value::$variant(self)
                }
            }

            impl FromValue for $t {
                fn from_value(value: &Value) -> Result<Self, TypeMismatch> {
                    match value {
                        Value::$variant(v) => Ok(v.clone()),
                        other => Err(TypeMismatch::new($dt, other.kind())),
                    }
                }
            }
        )*
    };
}

impl_scalar_codec! {
    bool => Bool / DataType::Bool,
    i8 => I8 / DataType::I8,
    i16 => I16 / DataType::I16,
    i32 => I32 / DataType::I32,
    i64 => I64 / DataType::I64,
    u8 => U8 / DataType::U8,
    u16 => U16 / DataType::U16,
    u32 => U32 / DataType::U32,
    u64 => U64 / DataType::U64,
    f32 => F32 / DataType::F32,
    f64 => F64 / DataType::F64,
    char => Char / DataType::Char,
    String => Str / DataType::Str,
    Vec<u8> => Bytes / DataType::Bytes,
}

impl HasDataType for &str {
    fn data_type() -> DataType {
        DataType::Str
    }
}

impl IntoValue for &str {
    fn into_value(self) -> Value {
        Value::Str(self.to_owned())
    }
}

/// Argument packs with a canonical parameter-schema list.
///
/// Implemented by tuples up to arity 6; `()` is the empty argument list.
pub trait ArgsSchema {
    /// Declared parameter schemas, in order.
    fn arg_types() -> Vec<DataType>;
}

/// Conversion of a typed argument pack *into* a dynamic argument list.
pub trait IntoArgs: ArgsSchema {
    /// Converts the pack into dynamic argument values.
    fn into_args(self) -> Vec<Value>;
}

/// Conversion of a dynamic argument list back into a typed pack.
pub trait FromArgs: ArgsSchema + Sized {
    /// Converts dynamic arguments back, surfacing the first argument whose
    /// value does not match its declared schema.
    fn from_args(args: &[Value]) -> Result<Self, TypeMismatch>;
}

/// Bidirectional argument-pack conversion — the bound [`FnPort`]s require.
///
/// [`FnPort`]: https://docs.rs/marea-core
pub trait ArgsCodec: IntoArgs + FromArgs {}

impl<T: IntoArgs + FromArgs> ArgsCodec for T {}

macro_rules! impl_tuple_args {
    ($($t:ident : $idx:tt),*) => {
        impl<$($t: HasDataType),*> ArgsSchema for ($($t,)*) {
            fn arg_types() -> Vec<DataType> {
                vec![$($t::data_type()),*]
            }
        }

        impl<$($t: IntoValue),*> IntoArgs for ($($t,)*) {
            fn into_args(self) -> Vec<Value> {
                vec![$(self.$idx.into_value()),*]
            }
        }

        impl<$($t: FromValue),*> FromArgs for ($($t,)*) {
            fn from_args(args: &[Value]) -> Result<Self, TypeMismatch> {
                const ARITY: usize = 0 $(+ { let _ = $idx; 1 })*;
                if args.len() != ARITY {
                    return Err(TypeMismatch::arity(ARITY, args.len()));
                }
                Ok((
                    $(
                        $t::from_value(&args[$idx])
                            .map_err(|e| e.with_detail(format!("argument {}", $idx)))?,
                    )*
                ))
            }
        }
    };
}

impl_tuple_args!();
impl_tuple_args!(A: 0);
impl_tuple_args!(A: 0, B: 1);
impl_tuple_args!(A: 0, B: 1, C: 2);
impl_tuple_args!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_args!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_args!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Typed event payloads.
///
/// * any [`ValueCodec`] type — a mandatory payload of that schema;
/// * `()` — a bare event channel (no payload);
/// * `Option<T>` — a payload that may legitimately be absent.
pub trait EventPayload: Sized {
    /// The payload schema the channel declares (`None` = bare channel).
    fn payload_type() -> Option<DataType>;

    /// Converts the payload for emission.
    fn into_payload(self) -> Option<Value>;

    /// Decodes an incoming payload against the declared schema.
    fn from_payload(value: Option<&Value>) -> Result<Self, TypeMismatch>;
}

impl<T: ValueCodec> EventPayload for T {
    fn payload_type() -> Option<DataType> {
        Some(T::data_type())
    }

    fn into_payload(self) -> Option<Value> {
        Some(self.into_value())
    }

    fn from_payload(value: Option<&Value>) -> Result<Self, TypeMismatch> {
        match value {
            Some(v) => T::from_value(v),
            None => Err(TypeMismatch::missing(T::data_type())),
        }
    }
}

impl EventPayload for () {
    fn payload_type() -> Option<DataType> {
        None
    }

    fn into_payload(self) -> Option<Value> {
        None
    }

    fn from_payload(_value: Option<&Value>) -> Result<Self, TypeMismatch> {
        // Bare subscribers tolerate payloads they did not ask for.
        Ok(())
    }
}

impl<T: ValueCodec> EventPayload for Option<T> {
    fn payload_type() -> Option<DataType> {
        Some(T::data_type())
    }

    fn into_payload(self) -> Option<Value> {
        self.map(IntoValue::into_value)
    }

    fn from_payload(value: Option<&Value>) -> Result<Self, TypeMismatch> {
        value.map(T::from_value).transpose()
    }
}

/// Typed function return values: any [`ValueCodec`] type, or `()` for
/// void functions.
pub trait FnRet: Sized {
    /// The declared return schema (`None` = void).
    fn return_type() -> Option<DataType>;

    /// Converts a provider-side return value for marshalling.
    fn into_return(self) -> Value;

    /// Decodes a caller-side reply value against the declared schema.
    fn from_return(value: &Value) -> Result<Self, TypeMismatch>;
}

impl<T: ValueCodec> FnRet for T {
    fn return_type() -> Option<DataType> {
        Some(T::data_type())
    }

    fn into_return(self) -> Value {
        self.into_value()
    }

    fn from_return(value: &Value) -> Result<Self, TypeMismatch> {
        T::from_value(value)
    }
}

impl FnRet for () {
    fn return_type() -> Option<DataType> {
        None
    }

    fn into_return(self) -> Value {
        // Matches the RPC engine's convention for void returns.
        Value::Bool(true)
    }

    fn from_return(_value: &Value) -> Result<Self, TypeMismatch> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u64::from_value(&42u64.into_value()).unwrap(), 42);
        assert_eq!(String::from_value(&"hi".into_value()).unwrap(), "hi");
        assert_eq!(Vec::<u8>::from_value(&vec![1u8, 2].into_value()).unwrap(), vec![1, 2]);
        assert_eq!(bool::data_type(), DataType::Bool);
    }

    #[test]
    fn mismatch_is_structured() {
        let err = u64::from_value(&Value::F64(1.5)).unwrap_err();
        assert_eq!(err.expected(), Some(&DataType::U64));
        assert_eq!(err.found(), Some(TypeKind::F64));
        assert!(err.to_string().contains("expected u64"), "{err}");
    }

    #[test]
    fn tuple_args_roundtrip() {
        let args = ("photo".to_owned(), 3u32).into_args();
        assert_eq!(args.len(), 2);
        let back = <(String, u32)>::from_args(&args).unwrap();
        assert_eq!(back, ("photo".to_owned(), 3u32));
        assert_eq!(<(String, u32)>::arg_types(), vec![DataType::Str, DataType::U32]);
    }

    #[test]
    fn tuple_args_check_arity_and_types() {
        let err = <(String, u32)>::from_args(&[Value::Str("x".into())]).unwrap_err();
        assert!(err.to_string().contains("2 arguments"), "{err}");
        let err = <(String, u32)>::from_args(&[Value::U32(1), Value::U32(2)]).unwrap_err();
        assert_eq!(err.detail(), Some("argument 0"));
    }

    #[test]
    fn event_payload_variants() {
        assert_eq!(<u32 as EventPayload>::payload_type(), Some(DataType::U32));
        assert_eq!(<() as EventPayload>::payload_type(), None);
        assert_eq!(<Option<u32> as EventPayload>::payload_type(), Some(DataType::U32));

        assert_eq!(7u32.into_payload(), Some(Value::U32(7)));
        assert_eq!(().into_payload(), None);
        assert_eq!(Some(7u32).into_payload(), Some(Value::U32(7)));
        assert_eq!(None::<u32>.into_payload(), None);

        assert_eq!(u32::from_payload(Some(&Value::U32(7))).unwrap(), 7);
        assert!(u32::from_payload(None).is_err(), "mandatory payload absent");
        <() as EventPayload>::from_payload(Some(&Value::U32(7))).unwrap();
        assert_eq!(Option::<u32>::from_payload(None).unwrap(), None);
    }

    #[test]
    fn fn_ret_variants() {
        assert_eq!(<bool as FnRet>::return_type(), Some(DataType::Bool));
        assert_eq!(<() as FnRet>::return_type(), None);
        assert_eq!(true.into_return(), Value::Bool(true));
        assert_eq!(<() as FnRet>::into_return(()), Value::Bool(true));
        assert!(!bool::from_return(&Value::Bool(false)).unwrap());
        <() as FnRet>::from_return(&Value::Bool(true)).unwrap();
    }
}
