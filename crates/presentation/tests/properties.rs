//! Property tests for the presentation-layer invariants.

use marea_presentation::testkit::{arb_data_type, arb_typed_value, arb_value_of};
use marea_presentation::{DataType, Value, ValuePath};
use proptest::prelude::*;

proptest! {
    /// Every generated `(type, value)` pair conforms by construction.
    #[test]
    fn generated_values_conform((ty, value) in arb_typed_value(3)) {
        prop_assert!(value.conforms_to(&ty).is_ok(), "{value} should conform to {ty}");
    }

    /// Conformance is invariant under cloning (no hidden identity).
    #[test]
    fn conformance_survives_clone((ty, value) in arb_typed_value(3)) {
        let copied = value.clone();
        prop_assert_eq!(&copied, &value);
        prop_assert!(copied.conforms_to(&ty).is_ok());
    }

    /// Structural compatibility is reflexive for generated types.
    #[test]
    fn compatibility_is_reflexive(ty in arb_data_type(3)) {
        prop_assert!(ty.is_compatible_with(&ty));
    }

    /// A value conforming to `ty` conforms to every structurally compatible
    /// type as well (compatibility is the contract the directory uses to
    /// match publishers and subscribers).
    #[test]
    fn compatible_types_accept_same_values((ty, value) in arb_typed_value(2)) {
        // Re-rooting a struct type under a different documentation name must
        // not affect conformance.
        if let DataType::Struct(st) = &ty {
            let mut renamed = marea_presentation::StructType::new("renamed");
            for f in st.fields() {
                renamed = renamed.with_field(f.name().as_str(), f.ty().clone()).unwrap();
            }
            let renamed = DataType::Struct(renamed);
            prop_assert!(ty.is_compatible_with(&renamed));
            prop_assert!(value.conforms_to(&renamed).is_ok());
        }
    }

    /// `size_hint` never lies below the raw payload for byte blobs.
    #[test]
    fn size_hint_covers_bytes(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let len = data.len();
        let v = Value::Bytes(data);
        prop_assert!(v.size_hint() >= len);
    }

    /// Path parsing and display round-trip.
    #[test]
    fn path_display_roundtrip(segs in proptest::collection::vec(
        prop_oneof![
            "[a-z][a-z0-9_]{0,6}".prop_map(|s| format!(".{s}")),
            (0usize..100).prop_map(|i| format!("[{i}]")),
        ],
        1..6,
    )) {
        // Assemble a syntactically valid path: must start with a field.
        let mut text = String::from("root");
        for s in &segs {
            text.push_str(s);
        }
        let parsed = ValuePath::parse(&text).expect("constructed path is valid");
        let reparsed = ValuePath::parse(&parsed.to_string()).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }

    /// Navigating a generated struct by its own field names always succeeds.
    #[test]
    fn struct_fields_navigable((ty, value) in arb_typed_value(2)) {
        if let (DataType::Struct(_), Value::Struct(sv)) = (&ty, &value) {
            for (name, expected) in sv.fields() {
                let got = value.at(name.as_str());
                prop_assert_eq!(got, Some(expected));
            }
        }
    }

}

#[test]
fn fixed_vectors_have_fixed_len() {
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    for len in 0..5usize {
        let ty = DataType::Vector(marea_presentation::VectorType::fixed(DataType::U16, len));
        for _ in 0..16 {
            let v = arb_value_of(&ty).new_tree(&mut runner).unwrap().current();
            match v {
                Value::Vector(vv) => assert_eq!(vv.len(), len),
                other => panic!("expected vector, got {other}"),
            }
        }
    }
}

#[test]
fn deeply_nested_types_have_bounded_depth() {
    // The generator is asked for depth <= 3 above; sanity-check the bound
    // the container relies on for resource accounting.
    use proptest::strategy::{Strategy, ValueTree};
    use proptest::test_runner::TestRunner;
    let mut runner = TestRunner::deterministic();
    for _ in 0..64 {
        let ty = arb_data_type(3).new_tree(&mut runner).unwrap().current();
        assert!(ty.depth() <= 4, "depth {} exceeds bound for {ty}", ty.depth());
    }
}
