//! Property-style tests for the typed conversion layer: every
//! `IntoValue`/`FromValue` impl round-trips, and every descriptor/value
//! disagreement surfaces as a structured `TypeMismatch`.

use marea_presentation::{
    ArgsSchema, DataType, EventPayload, FnRet, FromArgs, FromValue, HasDataType, IntoArgs,
    IntoValue, TypeKind, Value,
};
use proptest::prelude::*;

macro_rules! roundtrip_property {
    ($($test:ident: $t:ty => $dt:expr, $strategy:expr;)*) => {
        proptest! {
            $(
                /// Generated values of the Rust type survive the trip
                /// through the dynamic `Value` unchanged, and the derived
                /// schema is the declared one.
                #[test]
                fn $test(x in $strategy) {
                    prop_assert_eq!(<$t as HasDataType>::data_type(), $dt);
                    let v = x.clone().into_value();
                    prop_assert!(v.conforms_to(&<$t as HasDataType>::data_type()).is_ok());
                    let back = <$t as FromValue>::from_value(&v);
                    prop_assert_eq!(back.ok(), Some(x));
                }
            )*
        }
    };
}

roundtrip_property! {
    roundtrip_bool: bool => DataType::Bool, any::<bool>();
    roundtrip_i8: i8 => DataType::I8, any::<i8>();
    roundtrip_i16: i16 => DataType::I16, any::<i16>();
    roundtrip_i32: i32 => DataType::I32, any::<i32>();
    roundtrip_i64: i64 => DataType::I64, any::<i64>();
    roundtrip_u8: u8 => DataType::U8, any::<u8>();
    roundtrip_u16: u16 => DataType::U16, any::<u16>();
    roundtrip_u32: u32 => DataType::U32, any::<u32>();
    roundtrip_u64: u64 => DataType::U64, any::<u64>();
    roundtrip_f32: f32 => DataType::F32, any::<f32>();
    roundtrip_f64: f64 => DataType::F64, any::<f64>();
    roundtrip_char: char => DataType::Char, any::<char>();
    roundtrip_string: String => DataType::Str, any::<String>();
    roundtrip_bytes: Vec<u8> => DataType::Bytes, proptest::collection::vec(any::<u8>(), 0..64);
}

proptest! {
    /// Tuple argument packs round-trip element-wise with the declared
    /// parameter schemas.
    #[test]
    fn roundtrip_args(a in any::<u64>(), b in any::<String>(), c in any::<bool>()) {
        let args = (a, b.clone(), c).into_args();
        prop_assert_eq!(args.len(), 3);
        prop_assert_eq!(
            <(u64, String, bool)>::arg_types(),
            vec![DataType::U64, DataType::Str, DataType::Bool]
        );
        for (arg, ty) in args.iter().zip(<(u64, String, bool)>::arg_types()) {
            prop_assert!(arg.conforms_to(&ty).is_ok());
        }
        let back = <(u64, String, bool)>::from_args(&args);
        prop_assert_eq!(back.ok(), Some((a, b, c)));
    }

    /// Optional event payloads round-trip in both the present and absent
    /// cases.
    #[test]
    fn roundtrip_optional_payload(x in any::<u32>(), present in any::<bool>()) {
        let payload = if present { Some(x) } else { None };
        let wire = payload.into_payload();
        let back = <Option<u32> as EventPayload>::from_payload(wire.as_ref());
        prop_assert_eq!(back.ok(), Some(payload));
    }

    /// Every *wrong-kind* dynamic value is rejected with a mismatch that
    /// names the declared schema and the observed kind — the (declared
    /// `U64`, published `F64`) case and all its relatives.
    #[test]
    fn wrong_kind_is_a_structured_mismatch(x in any::<f64>()) {
        let err = u64::from_value(&Value::F64(x)).unwrap_err();
        prop_assert_eq!(err.expected(), Some(&DataType::U64));
        prop_assert_eq!(err.found(), Some(TypeKind::F64));

        let err = bool::from_value(&Value::U64(1)).unwrap_err();
        prop_assert_eq!(err.expected(), Some(&DataType::Bool));
        prop_assert_eq!(err.found(), Some(TypeKind::U64));

        let err = String::from_value(&Value::Bytes(vec![1])).unwrap_err();
        prop_assert_eq!(err.expected(), Some(&DataType::Str));
        prop_assert_eq!(err.found(), Some(TypeKind::Bytes));
    }
}

#[test]
fn every_scalar_rejects_every_other_kind() {
    // Exhaustive negative matrix over the scalar codecs: decoding a value
    // of any *different* kind must fail with the declared schema in the
    // error.
    let values = vec![
        Value::Bool(true),
        Value::I8(1),
        Value::I16(1),
        Value::I32(1),
        Value::I64(1),
        Value::U8(1),
        Value::U16(1),
        Value::U32(1),
        Value::U64(1),
        Value::F32(1.0),
        Value::F64(1.0),
        Value::Char('x'),
        Value::Str("s".into()),
        Value::Bytes(vec![1]),
    ];
    fn check<T: FromValue + std::fmt::Debug>(values: &[Value]) {
        for v in values {
            let decoded_ok = T::from_value(v).is_ok();
            let kinds_match = v.kind() == T::data_type().kind();
            assert_eq!(decoded_ok, kinds_match, "decoding {v:?} as {:?}", T::data_type());
            if !decoded_ok {
                let err = T::from_value(v).unwrap_err();
                assert_eq!(err.expected(), Some(&T::data_type()));
                assert_eq!(err.found(), Some(v.kind()));
            }
        }
    }
    check::<bool>(&values);
    check::<i8>(&values);
    check::<i16>(&values);
    check::<i32>(&values);
    check::<i64>(&values);
    check::<u8>(&values);
    check::<u16>(&values);
    check::<u32>(&values);
    check::<u64>(&values);
    check::<f32>(&values);
    check::<f64>(&values);
    check::<char>(&values);
    check::<String>(&values);
    check::<Vec<u8>>(&values);
}

#[test]
fn args_arity_and_position_errors_are_located() {
    // Too few arguments.
    let err = <(u64, String)>::from_args(&[Value::U64(1)]).unwrap_err();
    assert!(err.to_string().contains("2 arguments"), "{err}");
    // Wrong type in the second position is attributed to argument 1.
    let err = <(u64, String)>::from_args(&[Value::U64(1), Value::U64(2)]).unwrap_err();
    assert_eq!(err.detail(), Some("argument 1"));
    assert_eq!(err.expected(), Some(&DataType::Str));
}

#[test]
fn bare_and_void_contracts() {
    assert_eq!(<() as EventPayload>::payload_type(), None);
    assert_eq!(<() as FnRet>::return_type(), None);
    // A mandatory payload that never arrives is a mismatch, not a drop.
    let err = <u32 as EventPayload>::from_payload(None).unwrap_err();
    assert_eq!(err.expected(), Some(&DataType::U32));
    assert_eq!(err.found(), None);
    assert!(err.to_string().contains("no payload"), "{err}");
}

#[test]
fn borrowed_str_encodes_like_owned_string() {
    assert_eq!(<&str as HasDataType>::data_type(), DataType::Str);
    assert_eq!("hi".into_value(), String::from("hi").into_value());
}
