//! Fixture-driven end-to-end tests.
//!
//! Each rule is proven *live* three ways: it fires on its violation
//! fixture at exact lines, it goes silent when disabled (so a fixture
//! test failure means the rule itself regressed, not the corpus), and
//! the clean counterparts stay quiet. A final test lints the real
//! workspace so `cargo test` gates the same invariant CI does.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use marea_lint::{explicit_files, lint_files, lint_workspace, Options, Report};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

fn lint_fixture(name: &str, disabled: &[&str]) -> Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    let files = explicit_files(&[fixture(name)]).expect("fixture exists");
    let opts = Options {
        disabled: disabled.iter().map(|s| s.to_string()).collect::<BTreeSet<_>>(),
        deny_warnings: true,
    };
    lint_files(&root, &files, &opts).expect("lint runs")
}

fn lines_of(report: &Report, rule: &str) -> Vec<usize> {
    report.of_rule(rule).iter().map(|f| f.line).collect()
}

#[test]
fn d1_fires_on_exact_lines_and_dies_when_disabled() {
    let on = lint_fixture("violations/d1.rs", &[]);
    assert_eq!(lines_of(&on, "D1"), vec![14, 17, 20], "findings: {:?}", on.findings);
    assert_eq!(on.findings.len(), 3, "only D1 should fire: {:?}", on.findings);
    let off = lint_fixture("violations/d1.rs", &["D1"]);
    assert!(off.findings.is_empty(), "disabled rule must go silent: {:?}", off.findings);
}

#[test]
fn d2_fires_on_exact_lines_and_dies_when_disabled() {
    let on = lint_fixture("violations/d2.rs", &[]);
    assert_eq!(lines_of(&on, "D2"), vec![6, 7, 8, 9], "findings: {:?}", on.findings);
    assert_eq!(on.findings.len(), 4, "only D2 should fire: {:?}", on.findings);
    let off = lint_fixture("violations/d2.rs", &["D2"]);
    assert!(off.findings.is_empty(), "disabled rule must go silent: {:?}", off.findings);
}

#[test]
fn q1_fires_on_exact_lines_and_dies_when_disabled() {
    let on = lint_fixture("violations/q1.rs", &[]);
    assert_eq!(lines_of(&on, "Q1"), vec![3, 7, 9, 10], "findings: {:?}", on.findings);
    assert_eq!(on.findings.len(), 4, "only Q1 should fire: {:?}", on.findings);
    let off = lint_fixture("violations/q1.rs", &["Q1"]);
    assert!(off.findings.is_empty(), "disabled rule must go silent: {:?}", off.findings);
}

#[test]
fn r1_fires_on_exact_lines_and_dies_when_disabled() {
    let on = lint_fixture("violations/r1.rs", &[]);
    assert_eq!(lines_of(&on, "R1"), vec![5, 6, 8], "findings: {:?}", on.findings);
    assert_eq!(on.findings.len(), 3, "only R1 should fire: {:?}", on.findings);
    let off = lint_fixture("violations/r1.rs", &["R1"]);
    assert!(off.findings.is_empty(), "disabled rule must go silent: {:?}", off.findings);
}

#[test]
fn o1_fires_on_exact_lines_and_dies_when_disabled() {
    let on = lint_fixture("violations/o1.rs", &[]);
    assert_eq!(lines_of(&on, "O1"), vec![12, 14, 15, 16], "findings: {:?}", on.findings);
    assert_eq!(on.findings.len(), 4, "only O1 should fire: {:?}", on.findings);
    let off = lint_fixture("violations/o1.rs", &["O1"]);
    assert!(off.findings.is_empty(), "disabled rule must go silent: {:?}", off.findings);
}

#[test]
fn o1_ignores_allocation_outside_the_record_path() {
    let report = lint_fixture("clean/o1.rs", &[]);
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn o1_fires_on_metrics_shaped_sample_paths() {
    // The sampler extension: frame literals and `fn sample_*` bodies
    // are record-time just like `TraceEvent`/`.record(…)`.
    let on = lint_fixture("violations/metrics_o1.rs", &[]);
    assert_eq!(lines_of(&on, "O1"), vec![10, 12, 17, 18], "findings: {:?}", on.findings);
    assert_eq!(on.findings.len(), 4, "only O1 should fire: {:?}", on.findings);
    let off = lint_fixture("violations/metrics_o1.rs", &["O1"]);
    assert!(off.findings.is_empty(), "disabled rule must go silent: {:?}", off.findings);
}

#[test]
fn o1_ignores_query_time_rendering_of_the_metrics_timeline() {
    let report = lint_fixture("clean/metrics_o1.rs", &[]);
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn d1_fires_on_fec_shaped_shard_fanout() {
    // The fec module sits on `crates/protocol/src/` and is therefore
    // inside D1's scope automatically; this fixture proves the rule
    // recognises the module's characteristic shape (per-group repair
    // shard fan-out driven by a hash map).
    let on = lint_fixture("violations/fec_d1.rs", &[]);
    assert_eq!(lines_of(&on, "D1"), vec![15, 20], "findings: {:?}", on.findings);
    assert_eq!(on.findings.len(), 2, "only D1 should fire: {:?}", on.findings);
    let off = lint_fixture("violations/fec_d1.rs", &["D1"]);
    assert!(off.findings.is_empty(), "disabled rule must go silent: {:?}", off.findings);
}

#[test]
fn r1_fires_on_fec_shaped_decode_panics() {
    let on = lint_fixture("violations/fec_r1.rs", &[]);
    assert_eq!(lines_of(&on, "R1"), vec![6, 7, 9], "findings: {:?}", on.findings);
    assert_eq!(on.findings.len(), 3, "only R1 should fire: {:?}", on.findings);
    let off = lint_fixture("violations/fec_r1.rs", &["R1"]);
    assert!(off.findings.is_empty(), "disabled rule must go silent: {:?}", off.findings);
}

#[test]
fn fec_module_is_inside_the_hot_path_scopes() {
    // Scope is path-derived, so linting the real fec sources exercises
    // the same `crates/protocol/src/` prefix the rules key on: a module
    // moved out of the hot-path set would silently lose both rules.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let fec = root.join("crates/protocol/src/fec");
    let files = explicit_files(&[
        fec.join("mod.rs"),
        fec.join("block.rs"),
        fec.join("rate.rs"),
        fec.join("adapt.rs"),
    ])
    .expect("fec sources exist");
    let report = lint_files(root, &files, &Options::default()).expect("lint runs");
    assert!(report.findings.is_empty(), "fec must lint clean:\n{}", report.render_text());
}

#[test]
fn malformed_waiver_reports_w0_and_does_not_suppress() {
    let report = lint_fixture("violations/w0.rs", &[]);
    assert_eq!(lines_of(&report, "W0"), vec![7], "findings: {:?}", report.findings);
    assert_eq!(lines_of(&report, "D1"), vec![8], "the broken waiver must not hide the D1");
}

#[test]
fn every_finding_carries_a_span_and_a_hint() {
    for name in [
        "violations/d1.rs",
        "violations/d2.rs",
        "violations/q1.rs",
        "violations/r1.rs",
        "violations/o1.rs",
        "violations/metrics_o1.rs",
        "violations/fec_d1.rs",
        "violations/fec_r1.rs",
    ] {
        for f in &lint_fixture(name, &[]).findings {
            assert!(f.line > 0 && f.col > 0, "zero span in {name}: {f:?}");
            assert!(!f.hint.is_empty(), "missing hint in {name}: {f:?}");
        }
    }
}

#[test]
fn sorted_walk_helper_is_sanctioned() {
    let report = lint_fixture("clean/sorted.rs", &[]);
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn violation_text_in_strings_and_comments_is_ignored() {
    let report = lint_fixture("clean/tricky.rs", &[]);
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
}

#[test]
fn waiver_with_reason_suppresses_and_is_recorded_as_used() {
    let report = lint_fixture("clean/waived.rs", &[]);
    assert!(report.findings.is_empty(), "findings: {:?}", report.findings);
    assert_eq!(report.waivers.len(), 1);
    assert!(report.waivers[0].used);
    assert_eq!(report.waivers[0].reason, "order-free cardinality count");
    assert_eq!(report.exit_code(true), 0);
}

#[test]
fn workspace_is_clean() {
    // Mirror of the CI gate: the repo itself must lint clean, with no
    // unused waivers, under the default rule set.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint sits two levels under the workspace root");
    let report = lint_workspace(root, &Options::default()).expect("lint runs");
    assert!(report.findings.is_empty(), "workspace must lint clean:\n{}", report.render_text());
    assert_eq!(report.unused_waivers(), 0, "stale waivers:\n{}", report.render_text());
}
