// marea-lint: scope(d1)
//! Clean fixture: hash iteration routed through a sorted-walk helper.

use std::collections::HashMap;

fn sorted_ids(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut ids: Vec<u32> = map.keys().copied().collect();
    ids.sort_unstable();
    ids
}

fn send_all(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for id in sorted_ids(map) {
        out.push(map[&id]);
    }
    out
}

// The scratch-buffer shape hot sweeps use (`sweep::sorted_keys_into`):
// the hash walk lives in a `sorted_*` helper, the caller drains an
// owned, already-sorted scratch Vec — no raw hash iteration on the
// send path, no per-tick allocation.
fn sorted_ids_into(map: &HashMap<u32, u32>, scratch: &mut Vec<u32>) {
    scratch.clear();
    scratch.extend(map.keys().copied());
    scratch.sort_unstable();
}

fn send_all_with_scratch(map: &HashMap<u32, u32>, scratch: &mut Vec<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    sorted_ids_into(map, scratch);
    for id in scratch.drain(..) {
        out.push(map[&id]);
    }
    out
}
