// marea-lint: scope(d1)
//! Clean fixture: hash iteration routed through a sorted-walk helper.

use std::collections::HashMap;

fn sorted_ids(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut ids: Vec<u32> = map.keys().copied().collect();
    ids.sort_unstable();
    ids
}

fn send_all(map: &HashMap<u32, u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for id in sorted_ids(map) {
        out.push(map[&id]);
    }
    out
}
