// marea-lint: scope(d1, r1)
//! Clean fixture: violation-shaped text that must NOT fire.
//!
//! `list.unwrap()` in a doc comment, `Instant::now()` in prose.

use std::collections::HashMap;

const HELP: &str = "call .unwrap() or panic!(\"boom\") or map.keys()";
const RAW: &str = r#"thread::sleep and for x in &map and .expect("hi")"#;

/* nested /* block */ with Instant::now() inside */
fn lifetimes<'a>(s: &'a str) -> &'a str {
    let _map: HashMap<u32, u32> = HashMap::new();
    let _c = 'x';
    let _ = (HELP, RAW);
    s
}
