// marea-lint: scope(o1)
//! Clean fixture: record time only moves interned names and scalars;
//! allocation outside the record path (reports, query-time rendering)
//! is none of O1's business.

fn tidy(tracer: &mut Tracer, now: Micros, name: &Name) {
    let report = format!("rendered later: {}", name);
    tracer.record(now, TraceKind::VarDeliver, TraceId::NONE, None, 0, Some(name));
    let ev = TraceEvent { at: now, kind: TraceKind::VarPublish, name: Some(name.clone()), seq: 0 };
    drop((report, ev));
}
