// marea-lint: scope(o1)
//! Clean fixture: the sample path only moves Copy scalars; rendering a
//! timeline to JSON allocates freely because it runs at query time,
//! outside frame construction and the `sample_*` fns.

fn sample_tidy(frames: &mut Vec<MetricsFrame>, node: NodeId, at: Micros) {
    frames.push(MetricsFrame { at, sample: 1, node, frames_in: 3, bytes_out: 64 });
}

fn render_timeline(frames: &[MetricsFrame]) -> String {
    let mut out = String::new();
    for f in frames {
        out.push_str(&format!("{} {}\n", f.sample, f.bytes_out));
    }
    out
}
