// marea-lint: scope(d1)
//! Clean fixture: a correctly waived finding is suppressed and recorded.

use std::collections::HashMap;

fn count(m: &HashMap<u32, u32>) -> usize {
    // marea-lint: allow(D1): order-free cardinality count
    m.keys().count()
}
