// marea-lint: scope(d1)
//! D1 fixture: raw hash-map iteration on a wire-send path.

use std::collections::{HashMap, HashSet};

struct Router {
    routes: HashMap<u32, String>,
    peers: HashSet<u32>,
}

impl Router {
    fn flush(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for id in self.routes.keys() {
            out.push(*id);
        }
        for peer in &self.peers {
            out.push(*peer);
        }
        out.extend(self.routes.values().map(|_| 0));
        out
    }
}
