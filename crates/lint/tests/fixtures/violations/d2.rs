//! D2 fixture: wall-clock, sleeps and ambient RNG outside the transport.

use std::time::{Instant, SystemTime};

fn naughty() -> u32 {
    let a = Instant::now();
    let b = SystemTime::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let r = rand::thread_rng();
    drop((a, b, r));
    0
}
