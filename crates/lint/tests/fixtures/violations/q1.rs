//! Q1 fixture: calls into the deprecated dynamic string API.

#![allow(deprecated)]

fn build(ctx: &mut Ctx) {
    let d = Descriptor::builder("svc")
        .variable_dynamic("v", 1, 2, 3)
        .build();
    ctx.publish("v", 42u64);
    ctx.emit("e", None);
    drop(d);
}
