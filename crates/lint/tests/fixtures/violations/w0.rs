// marea-lint: scope(d1)
//! W0 fixture: a malformed waiver (missing reason) does not suppress.

use std::collections::HashMap;

fn sums(m: &HashMap<u32, u32>) -> u32 {
    // marea-lint: allow(D1)
    m.values().sum()
}
