// marea-lint: scope(o1)
//! O1 fixture: string allocation on the metrics sampler's per-period
//! path — frame-literal construction and `fn sample_*` bodies.

fn naughty_frames(node: NodeId, at: Micros) {
    let frame = MetricsFrame {
        at,
        sample: 1,
        node,
        label: format!("node-{}", node.0),
    };
    let link = LinkFrame { at, sample: 1, src: node.0, dst: node.0, tag: "up".to_string() };
    drop((frame, link));
}

fn sample_everything(last: &mut BTreeMap<NodeId, String>, node: NodeId) {
    let key = String::from("stats");
    last.insert(node, key.to_owned());
}
