// marea-lint: scope(r1)
//! R1 fixture: panic paths in protocol-grade code.

fn decode(buf: &[u8]) -> u32 {
    let first = buf.first().unwrap();
    let second = buf.get(1).expect("length checked");
    if *first == 0 {
        panic!("zero tag");
    }
    u32::from(*first) + u32::from(*second)
}
