// marea-lint: scope(d1)
//! D1 fixture, FEC-shaped: raw hash-map iteration while fanning repair
//! shards out to the wire — exactly the nondeterminism the rule exists
//! to keep off send paths (shard order decides the RNG/trace mapping).

use std::collections::HashMap;

struct FecFanout {
    groups: HashMap<u64, Vec<u8>>,
}

impl FecFanout {
    fn send_parity(&self) -> Vec<(u64, u8)> {
        let mut wire = Vec::new();
        for (group, lanes) in &self.groups {
            for lane in lanes {
                wire.push((*group, *lane));
            }
        }
        wire.extend(self.groups.keys().map(|g| (*g, 0)));
        wire
    }
}
