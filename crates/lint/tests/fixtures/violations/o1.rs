// marea-lint: scope(o1)
//! O1 fixture: string allocation while recording flight-recorder events.

fn naughty(tracer: &mut Tracer, now: Micros, name: &Name) {
    let ev = TraceEvent {
        at: now,
        incarnation: 1,
        kind: TraceKind::VarPublish,
        trace: TraceId::NONE,
        peer: None,
        seq: 0,
        name: Some(format!("chan/{}", 7)),
    };
    tracer.record(now, TraceKind::VarDeliver, TraceId::NONE, None, 0, Some(name.to_string()));
    tracer.record(now, TraceKind::EventEmit, TraceId::NONE, None, 0, Some(String::from("e")));
    tracer.record(now, TraceKind::CallStart, TraceId::NONE, None, 0, Some(label.to_owned()));
    drop(ev);
}
