// marea-lint: scope(r1)
//! R1 fixture, FEC-shaped: panic paths in shard decode/recovery — code
//! that must instead degrade to bare ARQ delivery on malformed input.

fn decode_shard(header: &[u8]) -> (u64, u8) {
    let group = header.first().unwrap();
    let index = header.get(1).expect("shard header length checked");
    if *index & 0x80 != 0 && *group == 0 {
        panic!("parity shard for the zero group");
    }
    (u64::from(*group), *index)
}
