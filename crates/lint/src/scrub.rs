//! Source scrubbing: the first lexer pass.
//!
//! `scrub` walks a Rust source file character by character and returns a
//! copy in which every comment and every string/char-literal *content* is
//! replaced by spaces, preserving the exact line/column layout of the
//! original. Rule matching then runs over the scrubbed text, so a
//! `.unwrap()` inside a doc comment or a `"Instant::now"` inside a log
//! string can never produce a finding. Comments are captured separately
//! (with their position) because waivers and pragmas live in them.
//!
//! The scrubber understands the lexical shapes that trip up naive
//! scanners: nested block comments, escaped quotes, multi-line strings,
//! raw strings (`r#"…"#` with any number of hashes), byte strings, char
//! literals, and the char-vs-lifetime ambiguity of `'`.

/// A comment lifted out of the source, `//`/`/*` markers included.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    /// 1-based line of the comment's first character.
    pub line: usize,
    /// 1-based column (in chars) of the comment's first character.
    pub col: usize,
}

/// The result of scrubbing one file.
#[derive(Debug)]
pub struct Scrubbed {
    /// Source with comments and literal contents blanked to spaces.
    /// Newlines are preserved, so (line, col) positions agree with the
    /// original file.
    pub code: String,
    /// Every comment in source order.
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    i: usize,
    line: usize,
    col: usize,
    out: String,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Emits `c` verbatim and advances.
    fn keep(&mut self, c: char) {
        self.out.push(c);
        self.advance(c);
    }

    /// Emits a space (or the newline itself) and advances.
    fn blank(&mut self, c: char) {
        self.out.push(if c == '\n' { '\n' } else { ' ' });
        self.advance(c);
    }

    fn advance(&mut self, c: char) {
        self.i += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Scrubs `src`; see the module docs.
pub fn scrub(src: &str) -> Scrubbed {
    let mut cur = Cursor {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        col: 1,
        out: String::with_capacity(src.len()),
    };
    let mut comments = Vec::new();

    while let Some(c) = cur.peek(0) {
        match c {
            '/' if cur.peek(1) == Some('/') => line_comment(&mut cur, &mut comments),
            '/' if cur.peek(1) == Some('*') => block_comment(&mut cur, &mut comments),
            '"' => string_literal(&mut cur),
            '\'' => char_or_lifetime(&mut cur),
            c if is_ident_start(c) => identifier(&mut cur),
            c => cur.keep(c),
        }
    }

    Scrubbed { code: cur.out, comments }
}

fn line_comment(cur: &mut Cursor, comments: &mut Vec<Comment>) {
    let (line, col) = (cur.line, cur.col);
    let mut text = String::new();
    while let Some(c) = cur.peek(0) {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.blank(c);
    }
    comments.push(Comment { text, line, col });
}

fn block_comment(cur: &mut Cursor, comments: &mut Vec<Comment>) {
    let (line, col) = (cur.line, cur.col);
    let mut text = String::new();
    let mut depth = 0usize;
    while let Some(c) = cur.peek(0) {
        if c == '/' && cur.peek(1) == Some('*') {
            depth += 1;
            text.push_str("/*");
            cur.blank('/');
            cur.blank('*');
        } else if c == '*' && cur.peek(1) == Some('/') {
            depth -= 1;
            text.push_str("*/");
            cur.blank('*');
            cur.blank('/');
            if depth == 0 {
                break;
            }
        } else {
            text.push(c);
            cur.blank(c);
        }
    }
    comments.push(Comment { text, line, col });
}

/// A plain (or byte) string body, opening quote already at the cursor.
/// The quotes are kept so the token stream still sees a literal; the
/// contents are blanked.
fn string_literal(cur: &mut Cursor) {
    cur.keep('"');
    while let Some(c) = cur.peek(0) {
        match c {
            '\\' => {
                // Blank the escape introducer and whatever it escapes
                // (covers \" and \\; multi-char escapes like \u{..} are
                // blanked by the ordinary loop below).
                cur.blank('\\');
                if let Some(next) = cur.peek(0) {
                    cur.blank(next);
                }
            }
            '"' => {
                cur.keep('"');
                return;
            }
            c => cur.blank(c),
        }
    }
}

/// A raw (or raw byte) string: `n` hashes seen after `r`/`br`, opening
/// quote at the cursor. No escapes; ends at `"` followed by `n` hashes.
fn raw_string(cur: &mut Cursor, hashes: usize) {
    cur.keep('"');
    while let Some(c) = cur.peek(0) {
        if c == '"' {
            let mut all = true;
            for k in 0..hashes {
                if cur.peek(1 + k) != Some('#') {
                    all = false;
                    break;
                }
            }
            if all {
                cur.keep('"');
                for _ in 0..hashes {
                    cur.keep('#');
                }
                return;
            }
        }
        cur.blank(c);
    }
}

/// Disambiguates `'c'` (char literal, blanked) from `'a` (lifetime,
/// kept: the quote is dropped to a space and the identifier flows on).
fn char_or_lifetime(cur: &mut Cursor) {
    let one = cur.peek(1);
    let two = cur.peek(2);
    let is_char = match one {
        Some('\\') => true,
        Some(c) if is_ident_start(c) => two == Some('\''),
        Some(_) => two == Some('\''),
        None => false,
    };
    if !is_char {
        // Lifetime: blank just the quote; `'a` becomes ` a`.
        cur.blank('\'');
        return;
    }
    cur.keep('\'');
    if cur.peek(0) == Some('\\') {
        // Escaped char: blank through the closing quote.
        while let Some(c) = cur.peek(0) {
            if c == '\'' {
                cur.keep('\'');
                return;
            }
            cur.blank(c);
        }
    } else {
        if let Some(c) = cur.peek(0) {
            cur.blank(c);
        }
        if cur.peek(0) == Some('\'') {
            cur.keep('\'');
        }
    }
}

/// An identifier — with the twist that `r`, `b` and `br` may prefix a
/// string literal, switching the scrubber into the right string mode.
fn identifier(cur: &mut Cursor) {
    let mut ident = String::new();
    while let Some(c) = cur.peek(0) {
        if !is_ident_continue(c) {
            break;
        }
        ident.push(c);
        cur.keep(c);
    }
    match ident.as_str() {
        "r" | "br" => {
            // Count hashes; a following quote means raw string.
            let mut hashes = 0usize;
            while cur.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if cur.peek(hashes) == Some('"') {
                for _ in 0..hashes {
                    cur.keep('#');
                }
                raw_string(cur, hashes);
            }
        }
        "b" if cur.peek(0) == Some('"') => {
            string_literal(cur);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn code(src: &str) -> String {
        scrub(src).code
    }

    #[test]
    fn blanks_line_and_doc_comments() {
        let s = scrub("let x = 1; // call .unwrap() here\n/// Instant::now\nfn f() {}\n");
        assert!(!s.code.contains("unwrap"));
        assert!(!s.code.contains("Instant"));
        assert_eq!(s.comments.len(), 2);
        assert_eq!(s.comments[0].line, 1);
        assert_eq!(s.comments[1].line, 2);
        assert!(s.comments[0].text.contains("unwrap"));
    }

    #[test]
    fn blanks_nested_block_comments() {
        let out = code("a /* x /* .unwrap() */ y */ b");
        assert!(!out.contains("unwrap"));
        assert!(out.starts_with('a') && out.ends_with('b'));
    }

    #[test]
    fn blanks_string_contents_but_keeps_quotes() {
        let out = code(r#"let s = "map.keys() \" Instant::now";"#);
        assert!(!out.contains("keys"));
        assert!(!out.contains("Instant"));
        assert_eq!(out.matches('"').count(), 2);
    }

    #[test]
    fn raw_strings_end_only_at_matching_hashes() {
        let out = code("let s = r#\"has \" quote and .unwrap()\"#; x.keys()");
        assert!(!out.contains("unwrap"));
        assert!(out.contains("keys"), "code after the raw string survives");
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let out = code("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(out.contains(" a str"), "lifetime ident kept: {out}");
        assert!(!out.contains('x') || !out.contains("'x'"), "char contents blanked");
    }

    #[test]
    fn preserves_line_columns() {
        let src = "ab /* c\nc */ d.unwrap()\n";
        let out = code(src);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        // `d` keeps its column on line 2.
        assert_eq!(lines[1].find("d.unwrap").unwrap(), 5);
    }
}
