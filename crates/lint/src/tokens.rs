//! Second lexer pass: scrubbed text → a flat token stream.
//!
//! Rules never look at raw text; they pattern-match over these tokens,
//! which carry exact 1-based (line, col) spans into the original file
//! (the scrubber preserves layout).

/// What a token is. The lint only needs identifiers, numbers and
/// single-character punctuation; multi-char operators stay split
/// (`::` is two `:` tokens) and matchers skip the fillers they do not
/// care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    Ident,
    Number,
    Punct,
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    pub col: usize,
}

impl Tok {
    pub fn is(&self, p: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(p)
    }

    pub fn is_ident(&self, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text == name
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Tokenizes scrubbed source.
pub fn tokenize(code: &str) -> Vec<Tok> {
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut col = 1usize;
    let mut chars = code.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c == '\n' {
            chars.next();
            line += 1;
            col = 1;
        } else if c.is_whitespace() {
            chars.next();
            col += 1;
        } else if is_ident_start(c) {
            let (l, s) = (line, col);
            let mut text = String::new();
            while let Some(&c) = chars.peek() {
                if !is_ident_continue(c) {
                    break;
                }
                text.push(c);
                chars.next();
                col += 1;
            }
            toks.push(Tok { kind: TokKind::Ident, text, line: l, col: s });
        } else if c.is_ascii_digit() {
            let (l, s) = (line, col);
            let mut text = String::new();
            // Numbers are consumed greedily (including `_`, type
            // suffixes and hex letters) so `1.max(2)` does not read the
            // digit as an identifier head; precision here is irrelevant
            // to every rule.
            while let Some(&c) = chars.peek() {
                if !(c.is_ascii_alphanumeric() || c == '_') {
                    break;
                }
                text.push(c);
                chars.next();
                col += 1;
            }
            toks.push(Tok { kind: TokKind::Number, text, line: l, col: s });
        } else {
            toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line, col });
            chars.next();
            col += 1;
        }
    }
    toks
}

/// Scans token `open_idx` (which must be `{`) to its matching `}`;
/// returns the index of the closing brace, or the last token if the
/// file is unbalanced.
pub fn matching_brace(toks: &[Tok], open_idx: usize) -> usize {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is('{') {
            depth += 1;
        } else if t.is('}') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_and_puncts_carry_spans() {
        let toks = tokenize("self.links\n  .keys()");
        let keys = toks.iter().find(|t| t.is_ident("keys")).unwrap();
        assert_eq!((keys.line, keys.col), (2, 4));
        assert!(toks.iter().any(|t| t.is('.')));
    }

    #[test]
    fn numbers_do_not_split_into_idents() {
        let toks = tokenize("let x = 0x1f_u32;");
        assert!(toks.iter().any(|t| t.kind == TokKind::Number && t.text == "0x1f_u32"));
    }

    #[test]
    fn brace_matching_nests() {
        let toks = tokenize("fn f() { if x { y } else { z } } fn g() {}");
        let open = toks.iter().position(|t| t.is('{')).unwrap();
        let close = matching_brace(&toks, open);
        assert!(toks[close + 1].is_ident("fn"));
    }
}
