//! The rule set and its token-level matchers.
//!
//! Five rules, each scoped to the paths where its property is
//! load-bearing (fixtures opt in via a `// marea-lint: scope(...)`
//! pragma so the corpus can live outside the real trees):
//!
//! * **D1** — no raw `HashMap`/`HashSet` iteration on wire-send paths.
//!   Send order decides how the deterministic netsim RNG stream maps
//!   onto datagrams, so hash-order iteration silently breaks
//!   bit-identical replay. Iteration must go through a `sorted_*`
//!   helper (whose body is the one sanctioned place for the raw walk).
//! * **D2** — no ambient nondeterminism (`Instant::now`,
//!   `SystemTime::now`, `thread::sleep`, `thread_rng`) outside the
//!   real-time transport boundary.
//! * **Q1** — no calls into the `#[deprecated]` dynamic string API and
//!   no blanket `#[allow(deprecated)]` outside the compat layer itself;
//!   compat tests must carry an explicit waiver.
//! * **R1** — no `unwrap`/`expect`/`panic!` in `crates/protocol` or the
//!   container hot paths.
//! * **O1** — no string allocation (`format!`, `.to_string()`,
//!   `String::from`/`new`, `.to_owned()`) inside `TraceEvent`,
//!   `MetricsFrame` or `LinkFrame` construction, `.record(…)` argument
//!   lists, or `fn sample_*` bodies (the metrics sampler's per-period
//!   path). The flight recorder runs on every publish/deliver and the
//!   sampler on every period; record/sample time must only move
//!   interned `Name`s and Copy scalars — rendering happens lazily at
//!   query time.
//!
//! Matchers run over the scrubbed token stream (comments and literal
//! contents already removed), so text inside strings or docs can never
//! fire a rule.

use crate::tokens::{matching_brace, Tok, TokKind};
use std::collections::BTreeSet;

/// Static description of one rule, for `--list-rules` and reports.
pub struct RuleInfo {
    pub id: &'static str,
    pub title: &'static str,
    pub hint: &'static str,
}

pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        title: "raw hash-map iteration on a wire-send path",
        hint: "route the walk through a `sorted_*` helper (e.g. marea_core::sweep::sorted_keys) \
               or waive with why iteration order cannot reach the wire",
    },
    RuleInfo {
        id: "D2",
        title: "ambient nondeterminism outside the real-time boundary",
        hint: "use the sim clock (`Micros` timestamps threaded from the harness); only the \
               real-time transport layer may touch the wall clock",
    },
    RuleInfo {
        id: "Q1",
        title: "deprecated dynamic string API outside the compat layer",
        hint: "migrate to typed ports (VarPort/EventPort/FnPort) and QoS profiles; compat \
               tests must carry an explicit waiver",
    },
    RuleInfo {
        id: "R1",
        title: "panic path (`unwrap`/`expect`/`panic!`) in protocol/container hot paths",
        hint: "handle the None/Err arm (let-else, match) or return a protocol error; hot \
               paths must stay panic-free",
    },
    RuleInfo {
        id: "O1",
        title: "string allocation on a flight-recorder record or metrics sample path",
        hint: "TraceEvent/MetricsFrame/LinkFrame fields carry interned `Name`s and Copy \
               scalars only; render lazily at query time (render_event/to_jsonl), never \
               allocate at record or sample time",
    },
];

pub fn rule_hint(id: &str) -> &'static str {
    RULES.iter().find(|r| r.id == id).map(|r| r.hint).unwrap_or("")
}

/// Everything the matchers need to know about one file.
pub struct FileCx<'a> {
    /// Workspace-relative path with `/` separators.
    pub path: &'a str,
    pub toks: &'a [Tok],
    /// Union of identifiers declared as `HashMap`/`HashSet` anywhere in
    /// the analyzed set (fields cross module boundaries: `self.vars
    /// .subscribed` in `container.rs` is declared in `engines/vars.rs`).
    pub hash_idents: &'a BTreeSet<String>,
    /// Inclusive line ranges of `#[cfg(test)] mod … { … }` regions.
    pub test_lines: Vec<(usize, usize)>,
    /// Inclusive line ranges of `fn sorted_*` bodies (D1-sanctioned).
    pub sorted_fn_lines: Vec<(usize, usize)>,
    /// Lowercased rule ids force-scoped in via a file pragma.
    pub pragma_scopes: BTreeSet<String>,
    /// True for files under `tests/` or `benches/` directories.
    pub is_test_file: bool,
}

/// A finding before waiver matching.
#[derive(Debug, Clone)]
pub struct RawFinding {
    pub rule: &'static str,
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl<'a> FileCx<'a> {
    fn in_ranges(ranges: &[(usize, usize)], line: usize) -> bool {
        ranges.iter().any(|(a, b)| (*a..=*b).contains(&line))
    }

    fn in_test_region(&self, line: usize) -> bool {
        Self::in_ranges(&self.test_lines, line)
    }

    fn in_sorted_helper(&self, line: usize) -> bool {
        Self::in_ranges(&self.sorted_fn_lines, line)
    }

    fn has_pragma(&self, rule: &str) -> bool {
        self.pragma_scopes.contains(&rule.to_ascii_lowercase())
    }
}

// ---- scoping ------------------------------------------------------------

/// Wire-send paths: the container sweep fns, the directory, and the
/// whole netsim + protocol crates.
fn d1_in_scope(cx: &FileCx) -> bool {
    if cx.has_pragma("d1") {
        return true;
    }
    if cx.is_test_file {
        return false;
    }
    let p = cx.path;
    p.ends_with("crates/core/src/container.rs")
        || p.contains("crates/core/src/container/")
        || p.ends_with("crates/core/src/directory.rs")
        || p.contains("crates/netsim/src/")
        || p.contains("crates/protocol/src/")
}

/// Everywhere except the real-time transport layer and the vendored
/// stand-in crates (which implement the timing primitives themselves).
fn d2_in_scope(cx: &FileCx) -> bool {
    if cx.has_pragma("d2") {
        return true;
    }
    let p = cx.path;
    !(p.contains("crates/transport/src/") || p.contains("support/"))
}

/// Everywhere except the module that *defines* the compat layer (its
/// declarations and unit tests are the layer's home).
fn q1_in_scope(cx: &FileCx) -> bool {
    cx.has_pragma("q1") || !cx.path.ends_with("crates/core/src/service.rs")
}

/// Protocol crate + container hot paths.
fn r1_in_scope(cx: &FileCx) -> bool {
    if cx.has_pragma("r1") {
        return true;
    }
    if cx.is_test_file {
        return false;
    }
    let p = cx.path;
    p.contains("crates/protocol/src/")
        || p.ends_with("crates/core/src/container.rs")
        || p.contains("crates/core/src/container/")
        || p.contains("crates/core/src/engines/")
}

/// The flight-recorder record path — the trace module itself plus the
/// two files that construct [`TraceEvent`]s or call `.record(…)` per
/// message (the container's engine handlers and the harness
/// crash/restart markers) — and the metrics sampler, whose `sample_*`
/// fns run on every sampling period.
fn o1_in_scope(cx: &FileCx) -> bool {
    if cx.has_pragma("o1") {
        return true;
    }
    if cx.is_test_file {
        return false;
    }
    let p = cx.path;
    p.ends_with("crates/core/src/trace.rs")
        || p.ends_with("crates/core/src/container.rs")
        || p.contains("crates/core/src/container/")
        || p.ends_with("crates/core/src/harness.rs")
        || p.ends_with("crates/core/src/metrics.rs")
}

// ---- file structure -----------------------------------------------------

/// Finds `#[cfg(test)] mod … { … }` line ranges.
pub fn test_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 6 < toks.len() {
        let hit = toks[i].is('#')
            && toks[i + 1].is('[')
            && toks[i + 2].is_ident("cfg")
            && toks[i + 3].is('(')
            && toks[i + 4].is_ident("test")
            && toks[i + 5].is(')')
            && toks[i + 6].is(']');
        if !hit {
            i += 1;
            continue;
        }
        let mut j = i + 7;
        // Skip further attributes and visibility between the cfg and
        // the item keyword.
        loop {
            if j < toks.len() && toks[j].is('#') {
                while j < toks.len() && !toks[j].is(']') {
                    j += 1;
                }
                j += 1;
            } else if j < toks.len() && toks[j].is_ident("pub") {
                j += 1;
                if j < toks.len() && toks[j].is('(') {
                    while j < toks.len() && !toks[j].is(')') {
                        j += 1;
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        if j < toks.len() && toks[j].is_ident("mod") {
            if let Some(open) = toks[j..].iter().position(|t| t.is('{')) {
                let close = matching_brace(toks, j + open);
                out.push((toks[i].line, toks[close].line));
                i = close;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Finds `fn sorted_*` body line ranges — the sanctioned raw-walk sites.
pub fn sorted_fn_regions(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < toks.len() {
        if toks[i].is_ident("fn") && toks[i + 1].text.starts_with("sorted_") {
            if let Some(open) = toks[i..].iter().position(|t| t.is('{')) {
                let close = matching_brace(toks, i + open);
                out.push((toks[i].line, toks[close].line));
                i = close;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Collects identifiers declared with a `HashMap`/`HashSet` type or
/// initializer: `name: HashMap<..>`, `name: &HashSet<..>`,
/// `let [mut] name = HashMap::new()` / `::with_capacity(..)` /
/// `::from(..)`.
pub fn collect_hash_idents(toks: &[Tok], into: &mut BTreeSet<String>) {
    for (i, t) in toks.iter().enumerate() {
        if !(t.is_ident("HashMap") || t.is_ident("HashSet")) {
            continue;
        }
        // Walk back over path/reference noise to the `:` or `=` that
        // binds this type to a name.
        let mut j = i;
        while j > 0 {
            let p = &toks[j - 1];
            if p.is(':') || p.is_ident("std") || p.is_ident("collections") || p.is('&') || p.is('<')
            {
                j -= 1;
            } else {
                break;
            }
        }
        // `j` now points at the first token of the type path; the token
        // before it is `:` (consumed above) — recompute: find the
        // binder immediately before the type path.
        let mut k = j;
        // Skip any consumed `:`/`<`/`&` run to find the binder token.
        while k > 0 && (toks[k - 1].is(':') || toks[k - 1].is('<') || toks[k - 1].is('&')) {
            k -= 1;
        }
        if k == 0 {
            continue;
        }
        let binder = &toks[k - 1];
        if binder.kind == TokKind::Ident
            && !matches!(binder.text.as_str(), "use" | "mut" | "pub" | "in" | "as")
        {
            // `name : HashMap<..>` — field, param or ascribed let.
            into.insert(binder.text.clone());
        } else if binder.is('=') {
            // `let [mut] name = HashMap::new()`.
            let mut m = k - 1;
            if m > 0 {
                m -= 1;
                if m > 0 && toks[m].is_ident("mut") {
                    m -= 1;
                }
                if toks[m].kind == TokKind::Ident && !toks[m].is_ident("let") {
                    into.insert(toks[m].text.clone());
                }
            }
        }
    }
}

// ---- matchers -----------------------------------------------------------

const ITER_METHODS: &[&str] = &["iter", "iter_mut", "keys", "values", "values_mut", "drain"];

const DEPRECATED_METHODS: &[&str] = &[
    "variable_dynamic",
    "event_dynamic",
    "function_dynamic",
    "publish",
    "emit",
    "call",
    "call_with_policy",
    "call_fn_with_policy",
];

/// Runs every enabled rule over one file.
pub fn detect(cx: &FileCx, disabled: &BTreeSet<String>) -> Vec<RawFinding> {
    let mut out = Vec::new();
    let on = |id: &str| !disabled.contains(id);
    if on("D1") && d1_in_scope(cx) {
        detect_d1(cx, &mut out);
    }
    if on("D2") && d2_in_scope(cx) {
        detect_d2(cx, &mut out);
    }
    if on("Q1") && q1_in_scope(cx) {
        detect_q1(cx, &mut out);
    }
    if on("R1") && r1_in_scope(cx) {
        detect_r1(cx, &mut out);
    }
    if on("O1") && o1_in_scope(cx) {
        detect_o1(cx, &mut out);
    }
    out.sort_by_key(|f| (f.line, f.col));
    out
}

fn detect_d1(cx: &FileCx, out: &mut Vec<RawFinding>) {
    let toks = cx.toks;
    let skip = |line: usize| cx.in_test_region(line) || cx.in_sorted_helper(line);
    // `map.iter()` / `.keys()` / … method form.
    for i in 2..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !ITER_METHODS.contains(&t.text.as_str()) {
            continue;
        }
        if !(i + 1 < toks.len() && toks[i + 1].is('(') && toks[i - 1].is('.')) {
            continue;
        }
        let recv = &toks[i - 2];
        if recv.kind == TokKind::Ident && cx.hash_idents.contains(&recv.text) && !skip(t.line) {
            out.push(RawFinding {
                rule: "D1",
                line: t.line,
                col: t.col,
                message: format!(
                    "hash-order iteration `{}.{}()` on a wire-send path",
                    recv.text, t.text
                ),
            });
        }
    }
    // `for … in &map` form (method form is caught above).
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("for") || (i + 1 < toks.len() && toks[i + 1].is('<')) {
            i += 1;
            continue;
        }
        // Find the `in` of this loop header (bounded scan; give up at
        // `{`, `;` or unbalanced pattern syntax).
        let mut depth = 0i32;
        let mut in_idx = None;
        for (j, t) in toks.iter().enumerate().take(toks.len().min(i + 48)).skip(i + 1) {
            if t.is('(') || t.is('[') {
                depth += 1;
            } else if t.is(')') || t.is(']') {
                depth -= 1;
            } else if depth == 0 && (t.is('{') || t.is(';')) {
                break;
            } else if depth == 0 && t.is_ident("in") {
                in_idx = Some(j);
                break;
            }
        }
        let Some(j) = in_idx else {
            i += 1;
            continue;
        };
        // Expression tokens until the body `{`.
        let mut expr = Vec::new();
        let mut depth = 0i32;
        for t in &toks[j + 1..] {
            if depth == 0 && t.is('{') {
                break;
            }
            if t.is('(') || t.is('[') {
                depth += 1;
            } else if t.is(')') || t.is(']') {
                depth -= 1;
            }
            expr.push(t);
        }
        // Shape: `&` [`mut`] ident (`.` ident)* ending in a hash ident.
        let flagged = match expr.split_first() {
            Some((amp, rest)) if amp.is('&') => {
                let rest: Vec<_> = rest.iter().filter(|t| !t.is_ident("mut")).copied().collect();
                let path_ok = !rest.is_empty()
                    && rest.iter().enumerate().all(|(k, t)| {
                        if k % 2 == 0 {
                            t.kind == TokKind::Ident
                        } else {
                            t.is('.')
                        }
                    });
                path_ok && rest.last().map(|t| cx.hash_idents.contains(&t.text)).unwrap_or(false)
            }
            _ => false,
        };
        if flagged && !skip(toks[i].line) {
            let last = expr.last().unwrap();
            out.push(RawFinding {
                rule: "D1",
                line: toks[i].line,
                col: toks[i].col,
                message: format!(
                    "hash-order iteration `for … in &{}` on a wire-send path",
                    last.text
                ),
            });
        }
        i = j;
    }
}

fn detect_d2(cx: &FileCx, out: &mut Vec<RawFinding>) {
    let toks = cx.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Previous identifier, skipping the `::` path separator.
        let prev_ident = {
            let mut j = i;
            loop {
                if j == 0 {
                    break None;
                }
                j -= 1;
                match toks[j].kind {
                    TokKind::Punct if toks[j].is(':') => continue,
                    TokKind::Ident => break Some(&toks[j]),
                    _ => break None,
                }
            }
        };
        let finding = match t.text.as_str() {
            "now" => match prev_ident {
                Some(p) if p.is_ident("Instant") || p.is_ident("SystemTime") => {
                    Some((p.line, p.col, format!("wall-clock read `{}::now`", p.text)))
                }
                _ => None,
            },
            "sleep" => match prev_ident {
                Some(p) if p.is_ident("thread") => {
                    Some((p.line, p.col, "real-time stall `thread::sleep`".to_string()))
                }
                _ => None,
            },
            "thread_rng" => {
                Some((t.line, t.col, "ambient RNG `thread_rng` (seedless)".to_string()))
            }
            _ => None,
        };
        if let Some((line, col, message)) = finding {
            out.push(RawFinding { rule: "D2", line, col, message });
        }
    }
}

fn detect_q1(cx: &FileCx, out: &mut Vec<RawFinding>) {
    let toks = cx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        // `.publish(` and friends — method calls into the compat API.
        if t.kind == TokKind::Ident
            && DEPRECATED_METHODS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].is('.')
            && i + 1 < toks.len()
            && toks[i + 1].is('(')
        {
            out.push(RawFinding {
                rule: "Q1",
                line: t.line,
                col: t.col,
                message: format!("call into deprecated dynamic string API `.{}(…)`", t.text),
            });
        }
        // `#[allow(deprecated)]` — blanket opt-outs hide regressions.
        if t.is_ident("allow")
            && i + 3 < toks.len()
            && toks[i + 1].is('(')
            && toks[i + 2].is_ident("deprecated")
            && toks[i + 3].is(')')
        {
            out.push(RawFinding {
                rule: "Q1",
                line: t.line,
                col: t.col,
                message: "blanket `allow(deprecated)` outside the compat layer".to_string(),
            });
        }
    }
}

/// Token-index ranges of flight-recorder record-time and metrics
/// sample-time constructions: `TraceEvent { … }` / `MetricsFrame { … }`
/// / `LinkFrame { … }` literals, `.record( … )` argument lists, and
/// `fn sample_*` bodies (the sampler's whole per-period path).
fn o1_record_ranges(toks: &[Tok]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if (t.is_ident("TraceEvent") || t.is_ident("MetricsFrame") || t.is_ident("LinkFrame"))
            && i + 1 < toks.len()
            && toks[i + 1].is('{')
        {
            out.push((i + 1, matching_brace(toks, i + 1)));
        }
        if t.is_ident("fn") && i + 1 < toks.len() && toks[i + 1].text.starts_with("sample_") {
            if let Some(open) = toks[i..].iter().position(|u| u.is('{')) {
                out.push((i + open, matching_brace(toks, i + open)));
            }
        }
        if t.is_ident("record")
            && i >= 1
            && toks[i - 1].is('.')
            && i + 1 < toks.len()
            && toks[i + 1].is('(')
        {
            // Matching close paren by depth scan.
            let mut depth = 0i32;
            for (j, u) in toks.iter().enumerate().skip(i + 1) {
                if u.is('(') {
                    depth += 1;
                } else if u.is(')') {
                    depth -= 1;
                    if depth == 0 {
                        out.push((i + 1, j));
                        break;
                    }
                }
            }
        }
    }
    out
}

fn detect_o1(cx: &FileCx, out: &mut Vec<RawFinding>) {
    let toks = cx.toks;
    // Ranges can nest (a `MetricsFrame { … }` literal inside a
    // `fn sample_*` body); dedup by position so each allocation is
    // reported once.
    let mut found = Vec::new();
    for (open, close) in o1_record_ranges(toks) {
        for i in open..close {
            let t = &toks[i];
            if t.kind != TokKind::Ident || cx.in_test_region(t.line) {
                continue;
            }
            let alloc = match t.text.as_str() {
                "format" if i + 1 < toks.len() && toks[i + 1].is('!') => {
                    Some("`format!` allocates".to_string())
                }
                "to_string" | "to_owned"
                    if toks[i - 1].is('.') && i + 1 < toks.len() && toks[i + 1].is('(') =>
                {
                    Some(format!("`.{}()` allocates", t.text))
                }
                "String" => {
                    // `String::from(..)` / `String::new()`.
                    let mut j = i + 1;
                    while j < toks.len() && toks[j].is(':') {
                        j += 1;
                    }
                    match toks.get(j) {
                        Some(n) if n.is_ident("from") || n.is_ident("new") => {
                            Some(format!("`String::{}` allocates", n.text))
                        }
                        _ => None,
                    }
                }
                _ => None,
            };
            if let Some(what) = alloc {
                found.push(RawFinding {
                    rule: "O1",
                    line: t.line,
                    col: t.col,
                    message: format!("{what} at record/sample time"),
                });
            }
        }
    }
    found.sort_by_key(|f| (f.line, f.col));
    found.dedup_by_key(|f| (f.line, f.col));
    out.append(&mut found);
}

fn detect_r1(cx: &FileCx, out: &mut Vec<RawFinding>) {
    let toks = cx.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.kind != TokKind::Ident || cx.in_test_region(t.line) {
            continue;
        }
        match t.text.as_str() {
            "unwrap" | "expect"
                if i >= 1 && toks[i - 1].is('.') && i + 1 < toks.len() && toks[i + 1].is('(') =>
            {
                out.push(RawFinding {
                    rule: "R1",
                    line: t.line,
                    col: t.col,
                    message: format!("panic path `.{}()` in a hot path", t.text),
                });
            }
            "panic" if i + 1 < toks.len() && toks[i + 1].is('!') => {
                out.push(RawFinding {
                    rule: "R1",
                    line: t.line,
                    col: t.col,
                    message: "explicit `panic!` in a hot path".to_string(),
                });
            }
            _ => {}
        }
    }
}
