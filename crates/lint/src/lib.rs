//! `marea-lint`: a repo-aware static analysis pass.
//!
//! The MAREA codebase carries guarantees that `rustc` cannot see:
//! bit-identical replay requires every wire-send sweep to walk sorted
//! keys, the sim must never read the wall clock, the deprecated dynamic
//! string API must not creep back in, and protocol/container hot paths
//! must not panic. This crate turns those conventions into machine
//! checks: a dependency-free lexer (no `syn`) scrubs each `.rs` file,
//! tokenizes it, and runs the rule set in [`rules`] with span-accurate
//! diagnostics.
//!
//! Violations can be waived inline —
//!
//! ```text
//! // marea-lint: allow(D2): SystemClock is the explicit real-time boundary
//! ```
//!
//! — the reason is mandatory, waivers apply to their own line or the
//! line below, and every waiver is reported in a summary table (unused
//! waivers are warnings, and errors under `--deny-warnings`). Fixture
//! files opt into path-scoped rules with `// marea-lint: scope(d1, r1)`.

pub mod rules;
pub mod scrub;
pub mod tokens;

use rules::{collect_hash_idents, detect, rule_hint, sorted_fn_regions, test_regions, FileCx};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Analyzer configuration.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Rule ids (uppercase) to skip entirely.
    pub disabled: BTreeSet<String>,
    /// Treat warnings (unused waivers) as errors.
    pub deny_warnings: bool,
}

/// One diagnostic that survived waiver matching.
#[derive(Debug, Clone)]
pub struct Finding {
    pub file: String,
    pub line: usize,
    pub col: usize,
    pub rule: String,
    pub message: String,
    pub hint: String,
}

/// One `allow(...)` waiver, used or not.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    pub file: String,
    pub line: usize,
    pub rules: Vec<String>,
    pub reason: String,
    pub used: bool,
}

/// The full result of a lint run.
#[derive(Debug, Default)]
pub struct Report {
    pub findings: Vec<Finding>,
    pub waivers: Vec<WaiverRecord>,
    pub files_scanned: usize,
}

impl Report {
    pub fn unused_waivers(&self) -> usize {
        self.waivers.iter().filter(|w| !w.used).count()
    }

    /// `0` clean, `1` findings (or unused waivers under deny).
    pub fn exit_code(&self, deny_warnings: bool) -> i32 {
        if !self.findings.is_empty() || (deny_warnings && self.unused_waivers() > 0) {
            1
        } else {
            0
        }
    }

    /// Findings for one rule id (test helper).
    pub fn of_rule(&self, rule: &str) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.rule == rule).collect()
    }

    /// Human-readable report.
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for f in &self.findings {
            let _ = writeln!(s, "{}:{}:{}: {}: {}", f.file, f.line, f.col, f.rule, f.message);
            if !f.hint.is_empty() {
                let _ = writeln!(s, "  hint: {}", f.hint);
            }
        }
        if !self.waivers.is_empty() {
            let _ = writeln!(
                s,
                "== waivers ({} used, {} unused)",
                self.waivers.iter().filter(|w| w.used).count(),
                self.unused_waivers()
            );
            for w in &self.waivers {
                let _ = writeln!(
                    s,
                    "  {}:{} {} [{}] {}",
                    w.file,
                    w.line,
                    if w.used { "used  " } else { "UNUSED" },
                    w.rules.join(","),
                    w.reason
                );
            }
        }
        let _ = writeln!(
            s,
            "== {} file(s) scanned, {} finding(s), {} waiver(s)",
            self.files_scanned,
            self.findings.len(),
            self.waivers.len()
        );
        s
    }

    /// Machine-readable report.
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            let _ = write!(
                s,
                "{}\n    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \
                 \"message\": {}, \"hint\": {}}}",
                if i > 0 { "," } else { "" },
                json_str(&f.file),
                f.line,
                f.col,
                json_str(&f.rule),
                json_str(&f.message),
                json_str(&f.hint),
            );
        }
        s.push_str("\n  ],\n  \"waivers\": [");
        for (i, w) in self.waivers.iter().enumerate() {
            let rules: Vec<String> = w.rules.iter().map(|r| json_str(r)).collect();
            let _ = write!(
                s,
                "{}\n    {{\"file\": {}, \"line\": {}, \"rules\": [{}], \"reason\": {}, \
                 \"used\": {}}}",
                if i > 0 { "," } else { "" },
                json_str(&w.file),
                w.line,
                rules.join(", "),
                json_str(&w.reason),
                w.used,
            );
        }
        let _ = write!(
            s,
            "\n  ],\n  \"summary\": {{\"files\": {}, \"findings\": {}, \"waivers_used\": {}, \
             \"waivers_unused\": {}}}\n}}\n",
            self.files_scanned,
            self.findings.len(),
            self.waivers.iter().filter(|w| w.used).count(),
            self.unused_waivers(),
        );
        s
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- waiver / pragma parsing -------------------------------------------

const VALID_RULES: &[&str] = &["D1", "D2", "Q1", "R1", "O1"];

enum Directive {
    Allow { rules: Vec<String>, reason: String },
    Scope { rules: Vec<String> },
    Malformed { why: String },
}

/// Parses a `marea-lint:` directive out of a comment, if present.
fn parse_directive(comment: &str) -> Option<Directive> {
    let at = comment.find("marea-lint:")?;
    let rest = comment[at + "marea-lint:".len()..].trim_start();
    let parse_ids = |inner: &str| -> Result<Vec<String>, String> {
        let mut ids = Vec::new();
        for raw in inner.split(',') {
            let id = raw.trim().to_ascii_uppercase();
            if id.is_empty() {
                continue;
            }
            if !VALID_RULES.contains(&id.as_str()) {
                return Err(format!("unknown rule id `{}`", raw.trim()));
            }
            ids.push(id);
        }
        if ids.is_empty() {
            Err("empty rule list".to_string())
        } else {
            Ok(ids)
        }
    };
    if let Some(body) = rest.strip_prefix("allow(") {
        let Some(close) = body.find(')') else {
            return Some(Directive::Malformed { why: "unclosed `allow(`".into() });
        };
        let rules = match parse_ids(&body[..close]) {
            Ok(r) => r,
            Err(why) => return Some(Directive::Malformed { why }),
        };
        let after = body[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':') else {
            return Some(Directive::Malformed {
                why: "missing `: <reason>` — waiver reasons are mandatory".into(),
            });
        };
        let reason = reason.trim();
        if reason.is_empty() {
            return Some(Directive::Malformed {
                why: "empty reason — waiver reasons are mandatory".into(),
            });
        }
        Some(Directive::Allow { rules, reason: reason.to_string() })
    } else if let Some(body) = rest.strip_prefix("scope(") {
        let Some(close) = body.find(')') else {
            return Some(Directive::Malformed { why: "unclosed `scope(`".into() });
        };
        match parse_ids(&body[..close]) {
            Ok(rules) => Some(Directive::Scope { rules }),
            Err(why) => Some(Directive::Malformed { why }),
        }
    } else {
        Some(Directive::Malformed {
            why: "expected `allow(<rules>): <reason>` or `scope(<rules>)`".into(),
        })
    }
}

// ---- file discovery -----------------------------------------------------

/// Directory names never descended into.
const ALWAYS_SKIP: &[&str] = &["target", ".git", ".github"];

/// Extra skips for whole-workspace runs: vendored stand-ins are
/// third-party mimicry (they may use the wall clock by design) and the
/// lint's own fixture corpus is violations on purpose.
const WORKSPACE_SKIP: &[&str] = &["support", "fixtures"];

fn walk_into(dir: &Path, skip_vendored: bool, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> =
        fs::read_dir(dir)?.collect::<Result<Vec<_>, _>>()?.into_iter().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if ALWAYS_SKIP.contains(&name) || (skip_vendored && WORKSPACE_SKIP.contains(&name)) {
                continue;
            }
            walk_into(&path, skip_vendored, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every analyzable `.rs` file under a workspace root.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    walk_into(root, true, &mut out)?;
    Ok(out)
}

/// `.rs` files under explicitly requested paths (fixtures included).
pub fn explicit_files(paths: &[PathBuf]) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for p in paths {
        if p.is_dir() {
            walk_into(p, false, &mut out)?;
        } else {
            out.push(p.clone());
        }
    }
    Ok(out)
}

// ---- the engine ---------------------------------------------------------

struct FilePrep {
    rel: String,
    toks: Vec<tokens::Tok>,
    comments: Vec<scrub::Comment>,
}

fn rel_path(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.to_string_lossy().replace('\\', "/")
}

/// Lints an explicit file set. `root` only shortens reported paths.
pub fn lint_files(root: &Path, files: &[PathBuf], opts: &Options) -> io::Result<Report> {
    // Pass 1: lex everything and build the repo-wide map-identifier
    // set (fields used in `container.rs` are declared in the engine
    // modules, so D1 needs cross-file knowledge).
    let mut preps = Vec::new();
    let mut hash_idents = BTreeSet::new();
    for file in files {
        let src = fs::read_to_string(file)?;
        let scrubbed = scrub::scrub(&src);
        let toks = tokens::tokenize(&scrubbed.code);
        collect_hash_idents(&toks, &mut hash_idents);
        preps.push(FilePrep { rel: rel_path(root, file), toks, comments: scrubbed.comments });
    }

    // Pass 2: run the rules per file and match waivers.
    let mut report = Report { files_scanned: preps.len(), ..Report::default() };
    for prep in &preps {
        let mut pragma_scopes = BTreeSet::new();
        let mut waivers: Vec<WaiverRecord> = Vec::new();
        for c in &prep.comments {
            // Directives live in plain `//` comments only: doc comments
            // are documentation and may legitimately *quote* the waiver
            // syntax (as this crate's own docs do).
            if c.text.starts_with("///")
                || c.text.starts_with("//!")
                || c.text.starts_with("/**")
                || c.text.starts_with("/*!")
            {
                continue;
            }
            match parse_directive(&c.text) {
                None => {}
                Some(Directive::Allow { rules, reason }) => waivers.push(WaiverRecord {
                    file: prep.rel.clone(),
                    line: c.line,
                    rules,
                    reason,
                    used: false,
                }),
                Some(Directive::Scope { rules }) => {
                    pragma_scopes.extend(rules.into_iter().map(|r| r.to_ascii_lowercase()));
                }
                Some(Directive::Malformed { why }) => report.findings.push(Finding {
                    file: prep.rel.clone(),
                    line: c.line,
                    col: c.col,
                    rule: "W0".to_string(),
                    message: format!("malformed marea-lint directive: {why}"),
                    hint: "syntax: // marea-lint: allow(D1[, R1]): <reason>".to_string(),
                }),
            }
        }

        let cx = FileCx {
            path: &prep.rel,
            toks: &prep.toks,
            hash_idents: &hash_idents,
            test_lines: test_regions(&prep.toks),
            sorted_fn_lines: sorted_fn_regions(&prep.toks),
            pragma_scopes,
            is_test_file: prep.rel.contains("/tests/")
                || prep.rel.starts_with("tests/")
                || prep.rel.contains("/benches/"),
        };
        for raw in detect(&cx, &opts.disabled) {
            // A waiver covers its own line and the line directly below.
            let waived = waivers.iter_mut().find(|w| {
                (w.line == raw.line || w.line + 1 == raw.line)
                    && w.rules.iter().any(|r| r == raw.rule)
            });
            if let Some(w) = waived {
                w.used = true;
                continue;
            }
            report.findings.push(Finding {
                file: prep.rel.clone(),
                line: raw.line,
                col: raw.col,
                rule: raw.rule.to_string(),
                message: raw.message,
                hint: rule_hint(raw.rule).to_string(),
            });
        }
        report.waivers.extend(waivers);
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.col, &a.rule).cmp(&(&b.file, b.line, b.col, &b.rule)));
    Ok(report)
}

/// Lints the whole workspace rooted at `root`.
pub fn lint_workspace(root: &Path, opts: &Options) -> io::Result<Report> {
    let files = workspace_files(root)?;
    lint_files(root, &files, opts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directive_parsing_accepts_good_waivers() {
        match parse_directive("// marea-lint: allow(D1, r1): order-free count") {
            Some(Directive::Allow { rules, reason }) => {
                assert_eq!(rules, vec!["D1".to_string(), "R1".to_string()]);
                assert_eq!(reason, "order-free count");
            }
            _ => unreachable!("expected Allow"),
        }
    }

    #[test]
    fn directive_parsing_rejects_missing_reason() {
        assert!(matches!(
            parse_directive("// marea-lint: allow(D1)"),
            Some(Directive::Malformed { .. })
        ));
        assert!(matches!(
            parse_directive("// marea-lint: allow(D1):   "),
            Some(Directive::Malformed { .. })
        ));
        assert!(matches!(
            parse_directive("// marea-lint: allow(Z9): nope"),
            Some(Directive::Malformed { .. })
        ));
    }

    #[test]
    fn non_directives_are_ignored() {
        assert!(parse_directive("// plain comment about sorting").is_none());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
