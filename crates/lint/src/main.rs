//! `marea-lint` CLI.
//!
//! ```text
//! marea-lint --workspace [--json] [--deny-warnings] [--disable RULE]...
//! marea-lint [OPTIONS] <path>...
//! ```
//!
//! Exit codes (machine-readable, CI gates on them):
//!   0  clean — no unwaived findings (and, under `--deny-warnings`,
//!      no unused waivers)
//!   1  findings present
//!   2  usage or I/O error

use marea_lint::{explicit_files, lint_files, rules::RULES, workspace_files, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
marea-lint: determinism, QoS-contract and hot-path robustness rules

USAGE:
    marea-lint --workspace [OPTIONS]
    marea-lint [OPTIONS] <path>...

OPTIONS:
    --workspace        lint every .rs file under the current directory
                       (skips target/, support/ stand-ins and fixtures)
    --json             emit a machine-readable JSON report
    --deny-warnings    unused waivers become errors (exit 1)
    --disable <RULE>   turn one rule off (repeatable; for liveness tests)
    --list-rules       print the rule table and exit
    -h, --help         this text

WAIVERS:
    // marea-lint: allow(D1[, R1]): <reason>   (reason is mandatory)
    applies to its own line and the line directly below; every waiver
    is reported in the summary table.
";

fn main() -> ExitCode {
    let mut workspace = false;
    let mut json = false;
    let mut deny_warnings = false;
    let mut disabled = std::collections::BTreeSet::new();
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--disable" => match args.next() {
                Some(rule) => {
                    disabled.insert(rule.to_ascii_uppercase());
                }
                None => {
                    eprintln!("error: --disable needs a rule id\n\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in RULES {
                    println!("{}  {}", r.id, r.title);
                    println!("      hint: {}", r.hint);
                }
                return ExitCode::SUCCESS;
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("error: unknown flag `{flag}`\n\n{USAGE}");
                return ExitCode::from(2);
            }
            path => paths.push(PathBuf::from(path)),
        }
    }

    if !workspace && paths.is_empty() {
        eprintln!("error: pass --workspace or at least one path\n\n{USAGE}");
        return ExitCode::from(2);
    }

    let root = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let files = if workspace {
        if !root.join("Cargo.toml").is_file() {
            eprintln!("error: --workspace must run from the repo root (no ./Cargo.toml here)");
            return ExitCode::from(2);
        }
        workspace_files(&root)
    } else {
        explicit_files(&paths)
    };
    let files = match files {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: walking sources: {e}");
            return ExitCode::from(2);
        }
    };

    let opts = Options { disabled, deny_warnings };
    match lint_files(&root, &files, &opts) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            ExitCode::from(report.exit_code(deny_warnings) as u8)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
