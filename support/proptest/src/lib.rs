//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the API subset MAREA's property tests use:
//!
//! * the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] /
//!   [`prop_oneof!`] macros;
//! * the [`Strategy`](strategy::Strategy) trait with `prop_map`,
//!   `prop_flat_map`, `prop_recursive` and `boxed`;
//! * strategies for ranges, tuples, `Just`, `any::<T>()`, simple
//!   `[class]{m,n}` string patterns, and [`collection`] helpers;
//! * a deterministic [`TestRunner`](test_runner::TestRunner).
//!
//! Failing cases are reported with their generated inputs but are **not
//! shrunk** — acceptable for CI-style regression testing; swap the path
//! dependency for the upstream crate when networked builds are available.

#![forbid(unsafe_code)]

/// Deterministic case runner and configuration.
pub mod test_runner {
    use std::fmt;

    /// How many cases each property runs.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 128 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// Assertion failure with a rendered message.
        Fail(String),
    }

    impl TestCaseError {
        /// Creates a failure from a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
            }
        }
    }

    /// Drives strategy generation with a deterministic PRNG.
    #[derive(Debug, Clone)]
    pub struct TestRunner {
        state: u64,
        config: ProptestConfig,
    }

    impl TestRunner {
        /// Creates a runner for `config`, seeded deterministically.
        pub fn new(config: ProptestConfig) -> Self {
            TestRunner { state: 0x9E37_79B9_7F4A_7C15, config }
        }

        /// A runner with a fixed seed and default configuration.
        pub fn deterministic() -> Self {
            TestRunner::new(ProptestConfig::default())
        }

        /// The active configuration.
        pub fn config(&self) -> &ProptestConfig {
            &self.config
        }

        /// Next 64 random bits (xorshift64*).
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform `usize` in `[lo, hi]` (inclusive).
        ///
        /// # Panics
        ///
        /// Panics when `lo > hi`.
        pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
            assert!(lo <= hi, "empty range");
            let span = (hi - lo) as u64 + 1;
            lo + (self.next_u64() % span) as usize
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    use crate::test_runner::TestRunner;

    /// A generated value plus (vestigial) shrinking access.
    ///
    /// This stand-in does not shrink: `current` returns the generated
    /// value as-is.
    pub trait ValueTree {
        /// The value type produced.
        type Value;

        /// The current (generated) value.
        fn current(&self) -> Self::Value;
    }

    /// Trivial value tree holding one generated value.
    #[derive(Debug, Clone)]
    pub struct JustTree<T>(pub T);

    impl<T: Clone> ValueTree for JustTree<T> {
        type Value = T;

        fn current(&self) -> T {
            self.0.clone()
        }
    }

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value: Clone + fmt::Debug;

        /// Generates one value.
        fn generate(&self, runner: &mut TestRunner) -> Self::Value;

        /// Generates one value wrapped in a [`ValueTree`] (proptest
        /// API compatibility; never fails here).
        fn new_tree(&self, runner: &mut TestRunner) -> Result<JustTree<Self::Value>, String>
        where
            Self: Sized,
        {
            Ok(JustTree(self.generate(runner)))
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Clone + fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generates a value, then generates from the strategy `f` derives
        /// from it.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }

        /// Builds a recursive strategy: `self` generates leaves, `recurse`
        /// wraps an inner strategy into a branch, up to `depth` levels.
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            let mut level: BoxedStrategy<Self::Value> = self.boxed();
            for _ in 0..depth {
                level = recurse(level).boxed();
            }
            level
        }

        /// Erases the strategy type (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation core, used by [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, runner: &mut TestRunner) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, runner: &mut TestRunner) -> S::Value {
            self.generate(runner)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T: Clone + fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            self.0.generate_dyn(runner)
        }
    }

    /// Strategy producing one constant value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _runner: &mut TestRunner) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Clone + fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, runner: &mut TestRunner) -> O {
            (self.f)(self.inner.generate(runner))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;

        fn generate(&self, runner: &mut TestRunner) -> S2::Value {
            (self.f)(self.inner.generate(runner)).generate(runner)
        }
    }

    /// Uniform choice among same-valued strategies (built by
    /// [`prop_oneof!`](crate::prop_oneof)).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over `arms`.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! requires at least one arm");
            Union { arms }
        }
    }

    impl<T: Clone + fmt::Debug> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            let i = runner.usize_in(0, self.arms.len() - 1);
            self.arms[i].generate(runner)
        }
    }

    macro_rules! impl_range_strategy_int {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn generate(&self, runner: &mut TestRunner) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u128;
                        (self.start as i128 + (runner.next_u64() as u128 % span) as i128) as $t
                    }
                }

                impl Strategy for RangeInclusive<$t> {
                    type Value = $t;

                    fn generate(&self, runner: &mut TestRunner) -> $t {
                        let (lo, hi) = (*self.start(), *self.end());
                        assert!(lo <= hi, "empty range strategy");
                        let span = (hi as i128 - lo as i128) as u128 + 1;
                        (lo as i128 + (runner.next_u64() as u128 % span) as i128) as $t
                    }
                }
            )*
        };
    }

    impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_range_strategy_float {
        ($($t:ty),*) => {
            $(
                impl Strategy for Range<$t> {
                    type Value = $t;

                    fn generate(&self, runner: &mut TestRunner) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        self.start + (runner.unit_f64() as $t) * (self.end - self.start)
                    }
                }
            )*
        };
    }

    impl_range_strategy_float!(f32, f64);

    /// Simple `[class]{m,n}` pattern strings generate matching strings.
    ///
    /// Supported syntax: literal characters, `[...]` classes with ranges,
    /// and `{n}` / `{m,n}` / `?` / `*` / `+` quantifiers.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, runner: &mut TestRunner) -> String {
            crate::string::generate_from_pattern(self, runner)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, runner: &mut TestRunner) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(runner),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// A `Vec` of strategies generates a `Vec` of values, element-wise.
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            self.iter().map(|s| s.generate(runner)).collect()
        }
    }

    /// Strategy for [`Arbitrary`](crate::arbitrary::Arbitrary) types; build
    /// with [`any`](crate::arbitrary::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T> fmt::Debug for Any<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Any")
        }
    }

    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, runner: &mut TestRunner) -> T {
            T::arbitrary(runner)
        }
    }
}

/// `any::<T>()` and the [`Arbitrary`](arbitrary::Arbitrary) trait.
pub mod arbitrary {
    use std::fmt;
    use std::marker::PhantomData;

    use crate::strategy::Any;
    use crate::test_runner::TestRunner;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Clone + fmt::Debug + 'static {
        /// Draws one arbitrary value.
        fn arbitrary(runner: &mut TestRunner) -> Self;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {
            $(impl Arbitrary for $t {
                fn arbitrary(runner: &mut TestRunner) -> Self {
                    runner.next_u64() as $t
                }
            })*
        };
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            runner.next_u64() & 1 == 1
        }
    }

    // Floats are kept finite (no NaN/inf) so value equality and codec
    // roundtrips stay well-defined, matching how the tests use them.
    impl Arbitrary for f64 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            let mantissa = (runner.next_u64() as i64 >> 12) as f64;
            let exp = (runner.next_u64() % 61) as i32 - 30;
            mantissa * (exp as f64).exp2()
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            let mantissa = (runner.next_u64() as i32 >> 8) as f32;
            let exp = (runner.next_u64() % 31) as i32 - 15;
            mantissa * (exp as f32).exp2()
        }
    }

    impl Arbitrary for char {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            loop {
                // Bias towards ASCII but exercise wider scalars too.
                let v = if runner.next_u64() & 3 == 0 {
                    (runner.next_u64() % 0x11_0000) as u32
                } else {
                    0x20 + (runner.next_u64() % 0x5f) as u32
                };
                if let Some(c) = char::from_u32(v) {
                    return c;
                }
            }
        }
    }

    impl Arbitrary for String {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            let len = runner.usize_in(0, 12);
            (0..len).map(|_| char::arbitrary(runner)).collect()
        }
    }
}

/// `prop::sample` — index selection helpers.
pub mod sample {
    use crate::arbitrary::Arbitrary;
    use crate::test_runner::TestRunner;

    /// An arbitrary position within a collection of then-unknown size.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(usize);

    impl Index {
        /// Resolves the index against a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics when `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(runner: &mut TestRunner) -> Self {
            Index(runner.next_u64() as usize)
        }
    }
}

/// Collection strategies (`vec`, `btree_set`).
pub mod collection {
    use std::collections::BTreeSet;
    use std::fmt;
    use std::ops::{Range, RangeInclusive};

    use crate::strategy::Strategy;
    use crate::test_runner::TestRunner;

    /// A size specification for generated collections (inclusive bounds).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy for `Vec`s of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let n = runner.usize_in(self.size.lo, self.size.hi);
            (0..n).map(|_| self.element.generate(runner)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with `size` elements drawn from `element`.
    ///
    /// Duplicate draws are retried a bounded number of times, so the
    /// resulting set may be smaller than requested when the element
    /// domain is narrow (matching proptest's best-effort semantics).
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    /// See [`btree_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + fmt::Debug,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, runner: &mut TestRunner) -> Self::Value {
            let target = runner.usize_in(self.size.lo, self.size.hi);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < target && attempts < target * 20 + 20 {
                out.insert(self.element.generate(runner));
                attempts += 1;
            }
            out
        }
    }
}

/// Pattern-string generation (the `Strategy for &str` backend).
pub mod string {
    use crate::test_runner::TestRunner;

    enum Atom {
        Literal(char),
        Class(Vec<(char, char)>),
    }

    fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
        let mut chars = pattern.chars().peekable();
        let mut atoms = Vec::new();
        while let Some(c) = chars.next() {
            let atom = if c == '[' {
                let mut ranges = Vec::new();
                let mut prev: Option<char> = None;
                while let Some(k) = chars.next() {
                    if k == ']' {
                        break;
                    }
                    if k == '-' {
                        if let (Some(lo), Some(&hi)) = (prev, chars.peek()) {
                            if hi != ']' {
                                chars.next();
                                ranges.pop();
                                ranges.push((lo, hi));
                                prev = None;
                                continue;
                            }
                        }
                        ranges.push(('-', '-'));
                        prev = Some('-');
                    } else {
                        ranges.push((k, k));
                        prev = Some(k);
                    }
                }
                Atom::Class(ranges)
            } else {
                Atom::Literal(c)
            };
            // Optional quantifier.
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for k in chars.by_ref() {
                        if k == '}' {
                            break;
                        }
                        spec.push(k);
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => {
                            (a.trim().parse().unwrap_or(0), b.trim().parse().unwrap_or(8))
                        }
                        None => {
                            let n = spec.trim().parse().unwrap_or(1);
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            atoms.push((atom, lo, hi));
        }
        atoms
    }

    /// Generates a string matching a simple `[class]{m,n}` pattern.
    pub fn generate_from_pattern(pattern: &str, runner: &mut TestRunner) -> String {
        let mut out = String::new();
        for (atom, lo, hi) in parse(pattern) {
            let count = runner.usize_in(lo, hi.max(lo));
            for _ in 0..count {
                match &atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(ranges) => {
                        if ranges.is_empty() {
                            continue;
                        }
                        let (lo_c, hi_c) = ranges[runner.usize_in(0, ranges.len() - 1)];
                        let span = hi_c as u32 - lo_c as u32;
                        let pick = lo_c as u32 + (runner.next_u64() % (u64::from(span) + 1)) as u32;
                        out.push(char::from_u32(pick).unwrap_or(lo_c));
                    }
                }
            }
        }
        out
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, ValueTree};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Alias for the crate root, matching proptest's prelude.
    pub use crate as prop;
}

/// Asserts a condition inside a [`proptest!`] body, failing the case (not
/// panicking) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, "assertion failed: `{:?}` != `{:?}`", left, right);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Declares property-test functions: each `pattern in strategy` argument
/// is regenerated for every case and the body is run against it.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $config; $($rest)*);
    };
    (@impl $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),* $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            #[allow(clippy::redundant_closure_call)]
            fn $name() {
                let config = $config;
                let mut runner = $crate::test_runner::TestRunner::new(config.clone());
                for case in 0..config.cases {
                    let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> = {
                        let ($($pat,)*) = ($(
                            $crate::strategy::Strategy::generate(&($strategy), &mut runner),
                        )*);
                        (move || -> ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > {
                            $body
                            ::std::result::Result::Ok(())
                        })()
                    };
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u32..10, y in 0usize..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn patterns_match_shape(s in "[a-z][a-z0-9_]{0,8}") {
            prop_assert!(!s.is_empty() && s.len() <= 9, "{s}");
            prop_assert!(s.chars().next().unwrap().is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn combinators_compose(v in prop::collection::vec(any::<u8>(), 1..5)) {
            prop_assert!((1..5).contains(&v.len()));
        }
    }

    #[test]
    fn oneof_and_map() {
        let s = prop_oneof![Just(1u8).prop_map(|x| x + 1), Just(9u8)];
        let mut runner = TestRunner::deterministic();
        for _ in 0..50 {
            let v = s.new_tree(&mut runner).unwrap().current();
            assert!(v == 2 || v == 9);
        }
    }

    #[test]
    fn recursive_depth_is_bounded() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 1,
                Tree::Node(k) => 1 + k.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 8, 2, |inner| {
            prop::collection::vec(inner, 1..3).prop_map(Tree::Node)
        });
        let mut runner = TestRunner::deterministic();
        for _ in 0..100 {
            let t = strat.new_tree(&mut runner).unwrap().current();
            assert!(depth(&t) <= 4);
        }
    }

    #[test]
    fn sample_index_resolves() {
        let mut runner = TestRunner::deterministic();
        for _ in 0..20 {
            let idx =
                crate::strategy::Strategy::generate(&any::<crate::sample::Index>(), &mut runner);
            assert!(idx.index(7) < 7);
        }
    }
}
