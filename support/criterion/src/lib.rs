//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! Provides the macro and builder surface MAREA's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, throughput
//! annotations) over a simple median-of-samples timer. No statistical
//! analysis, plots or baselines — swap the path dependency for the
//! upstream crate when networked builds are available.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timing driver handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    last_median: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording the median sample time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            let out = f();
            times.push(t0.elapsed());
            std::hint::black_box(&out);
        }
        times.sort();
        self.last_median = times[times.len() / 2];
    }
}

/// The benchmark manager.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many samples each benchmark records.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the stand-in has no warm-up phase.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the stand-in samples a fixed count.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into().label;
        run_one(&name, self.sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = format!("{}/{}", self.name, id.into().label);
        run_one(&name, self.criterion.sample_size, self.throughput, f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, samples: usize, tp: Option<Throughput>, mut f: F) {
    let mut b = Bencher { samples, last_median: Duration::ZERO };
    f(&mut b);
    let median = b.last_median;
    let rate = match tp {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  ({:.0} elem/s)", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  ({:.1} MiB/s)", n as f64 / median.as_secs_f64() / (1024.0 * 1024.0))
        }
        _ => String::new(),
    };
    println!("bench {name:<48} median {median:>12.3?}{rate}");
}

/// Declares a group of benchmark functions, optionally with a custom
/// [`Criterion`] configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the named benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function(BenchmarkId::new("work", 10), |b| {
            b.iter(|| (0..10u64).map(black_box).sum::<u64>())
        });
        group.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
