//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API surface MAREA
//! uses (non-poisoning `lock()` that returns the guard directly). Swap the
//! path dependency for the upstream crate when networked builds are
//! available.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive; `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. A panic while a guard
    /// is held does not poison the lock (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock; methods never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::panic::catch_unwind(move || {
            let _g = m2.lock();
            panic!("boom");
        });
        assert_eq!(*m.lock(), 0, "lock usable after a panic");
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
