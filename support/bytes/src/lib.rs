//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset MAREA actually uses: a cheaply-clonable
//! immutable byte buffer ([`Bytes`]), an append-only builder
//! ([`BytesMut`]) and the [`BufMut`] writer trait. Semantics match the
//! real crate for this subset; swap the path dependency for the upstream
//! crate when networked builds are available.

#![forbid(unsafe_code)]

use std::borrow::Borrow;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
///
/// Internally a reference-counted vector plus a window, so `clone` and
/// `slice` are O(1).
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    /// Creates `Bytes` from a static slice.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes::from(bytes.to_vec())
    }

    /// Creates `Bytes` by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a slice of self for the provided range (O(1), shares the
    /// underlying storage).
    ///
    /// # Panics
    ///
    /// Panics when the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Self {
        let len = self.len();
        let begin = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(begin <= end && end <= len, "slice out of bounds");
        Bytes { data: Arc::clone(&self.data), start: self.start + begin, end: self.start + end }
    }

    /// Copies self into a new `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let data: Arc<[u8]> = Arc::from(v);
        Bytes { start: 0, end: data.len(), data }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from(v.to_vec())
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from(v.as_bytes().to_vec())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Bytes::from(v.into_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_ref().cmp(other.as_ref())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_ref() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_ref().hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

/// A growable byte buffer, frozen into [`Bytes`] when complete.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut { data: Vec::new() }
    }

    /// Creates an empty buffer with `capacity` reserved.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut { data: Vec::with_capacity(capacity) }
    }

    /// Number of bytes written.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Removes all bytes, keeping capacity.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    /// Appends `extend` to the buffer.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.data.extend_from_slice(extend);
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(data: Vec<u8>) -> Self {
        BytesMut { data }
    }
}

/// Write access to a byte buffer (little-endian scalar helpers).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_shares_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(s.as_ref(), &[2, 3, 4]);
        assert_eq!(s.slice(1..).as_ref(), &[3, 4]);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn freeze_roundtrip() {
        let mut m = BytesMut::new();
        m.put_u8(7);
        m.put_u32_le(0x01020304);
        m.extend_from_slice(b"xy");
        let b = m.freeze();
        assert_eq!(b.as_ref(), &[7, 4, 3, 2, 1, b'x', b'y']);
    }

    #[test]
    fn equality_ignores_window_offsets() {
        let a = Bytes::from(vec![9, 1, 2, 9]).slice(1..3);
        let b = Bytes::from(vec![1, 2]);
        assert_eq!(a, b);
        assert_eq!(a, vec![1u8, 2]);
    }

    #[test]
    fn debug_is_printable() {
        let b = Bytes::from_static(b"a\x00b");
        assert_eq!(format!("{b:?}"), "b\"a\\x00b\"");
    }
}
