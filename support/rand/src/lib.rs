//! Offline stand-in for [`rand`](https://docs.rs/rand) 0.8.
//!
//! Implements the subset MAREA's simulators use: a small seeded PRNG
//! ([`rngs::SmallRng`]), [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension trait with `gen`/`gen_range`/`gen_bool`. The generator is
//! deterministic per seed (splitmix64-initialised xorshift64*), which is
//! all the simulation substrate requires. Swap the path dependency for the
//! upstream crate when networked builds are available.

#![forbid(unsafe_code)]
#![allow(clippy::should_implement_trait)]

use std::ops::{Range, RangeInclusive};

/// Core random-number source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates a generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {
        $(impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        })*
    };
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled for values of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*
    };
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {
        $(
            impl SampleRange<$t> for Range<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let unit = <$t as Standard>::sample(rng);
                    self.start + unit * (self.end - self.start)
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = self.into_inner();
                    assert!(lo <= hi, "cannot sample empty range");
                    let unit = <$t as Standard>::sample(rng);
                    lo + unit * (hi - lo)
                }
            }
        )*
    };
}

impl_sample_range_float!(f32, f64);

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, seeded, non-cryptographic generator
    /// (splitmix64-initialised xorshift64*).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // splitmix64 step decorrelates adjacent seeds.
            let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            SmallRng { state: (z ^ (z >> 31)) | 1 }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // xorshift64*.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3u64..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(7i32..=12);
            assert!((7..=12).contains(&w));
            let f = r.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn negative_int_ranges() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            let v = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
